"""The cluster front end: shard, supervise, rebalance, aggregate.

The router owns four responsibilities, deliberately layered so each is
small:

**Sharding.**  Sessions are assigned to workers by consistent hash of
the *router-generated* session id (:mod:`repro.cluster.hashing`).  The
assignment is sticky: every poll for a session is forwarded to the
replica that owns its :class:`~repro.serve.sessions.AttackSession`, so
per-session query accounting stays exactly as paper-faithful as the
single-process server -- one session, one counter, one replica.

**Supervision.**  A heartbeat thread sweeps the worker slots: a worker
whose process exited, or that misses consecutive ``/healthz`` probes, is
declared dead, removed from the ring, and respawned into the same slot
with exponential backoff -- up to ``max_restarts`` times, after which
the slot stays down and its capacity is gone but the tier keeps serving.

**Rebalancing.**  A dead worker's open sessions are re-submitted to
survivors under their original ids.  The attacks are deterministic and
every replica serves the same model, so a rebalanced session re-derives
the same query stream from the start and finishes with exactly the
final query count an uninterrupted run would have charged -- the same
invariant the PR 5 drain/resume path pinned, now applied across
replicas.  The durable record backing this is the router's *ledger*, a
:class:`~repro.runtime.checkpoint.CheckpointStore` of submitted specs
and completion markers: it survives worker crashes trivially (it never
lived in a worker) and lets a whole restarted tier resume its open
sessions with ``--resume``.

**Aggregation.**  ``/metrics`` scrapes every live worker and folds the
snapshots into a cluster plane (:mod:`repro.cluster.metrics`), and every
membership event -- spawn, death, restart, rebalance, drain -- lands in a
``cluster_event``-style JSONL log via :class:`~repro.runtime.events.RunLog`.
"""

from __future__ import annotations

import argparse
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.cluster.cacheservice import cacheservice_argv
from repro.cluster.config import ClusterConfig, worker_argv
from repro.cluster.hashing import HashRing
from repro.cluster.metrics import aggregate_worker_metrics
from repro.cluster.workers import (
    BOOTING,
    DEAD,
    LIVE,
    WorkerProcess,
    free_port,
    http_json,
)
from repro.models.registry import ARCHITECTURES
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.events import RunLog

#: Request bodies above this size are rejected before buffering.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Terminal session states, as reported by workers.
_TERMINAL = ("done", "failed", "cancelled", "expired")


class SessionEntry:
    """The router's record of one session: enough to route and rebuild."""

    __slots__ = (
        "session_id",
        "spec",
        "client",
        "worker",
        "done",
        "final",
        "accepted_at",
        "deadline_seconds",
    )

    def __init__(
        self,
        session_id: str,
        spec: Dict,
        client: Optional[str],
        worker: Optional[str],
    ):
        self.session_id = session_id
        self.spec = spec
        self.client = client
        #: Owning worker slot name; ``None`` while awaiting (re)placement.
        self.worker = worker
        self.done = False
        #: Cached terminal payload, so a finished session stays pollable
        #: even after its worker dies.
        self.final: Optional[Dict] = None
        #: When the router accepted (or restored) this session; with
        #: :attr:`deadline_seconds` it lets a rebalance hand the new
        #: owner only the *remaining* wall-clock budget.
        self.accepted_at = time.monotonic()
        deadline = spec.get("deadline_seconds") if isinstance(spec, dict) else None
        self.deadline_seconds = (
            float(deadline)
            if isinstance(deadline, (int, float)) and not isinstance(deadline, bool)
            else None
        )


def open_sessions_from_records(records: List[Dict]) -> Dict[str, Dict]:
    """Ledger records -> still-open session records, by id.

    A session is open when its ``session`` record has no later
    ``session_done`` marker.  Later ``session`` records win on duplicate
    ids (a rebalance re-appends the spec it re-submitted).
    """
    sessions: Dict[str, Dict] = {}
    finished = set()
    for record in records:
        kind = record.get("kind")
        if kind == "session":
            sessions[record["id"]] = record
        elif kind == "session_done":
            finished.add(record["id"])
    return {
        session_id: record
        for session_id, record in sessions.items()
        if session_id not in finished
    }


class ClusterRouter:
    """Sharded serve tier: N worker replicas behind one address."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.run_log = RunLog(config.log_path)
        self.ledger = (
            CheckpointStore(config.checkpoint) if config.checkpoint else None
        )
        #: The shared L2 cache service, reusing the worker-slot plumbing
        #: (spawn/health/terminate + supervised restart) with its own
        #: argv.  Workers are pointed at its fixed loopback port, which
        #: survives restarts of the service, so a respawned cache is
        #: picked up by every worker's L2 cooldown probe automatically.
        self.cache_service: Optional[WorkerProcess] = None
        builder = None
        if config.shared_cache:
            self.cache_service = WorkerProcess(
                "l2cache",
                free_port(),
                config,
                argv_builder=lambda cfg, port: cacheservice_argv(
                    port, cfg.shared_cache_size
                ),
            )
            shared_address = f"127.0.0.1:{self.cache_service.port}"

            def builder(cfg, port, _address=shared_address):
                return worker_argv(cfg, port, shared_cache=_address)

        self.workers: List[WorkerProcess] = [
            WorkerProcess(f"w{index}", free_port(), config, argv_builder=builder)
            for index in range(config.workers)
        ]
        self.ring = HashRing()
        self.draining = False
        self._lock = threading.RLock()
        # Serializes rebalance ticks: tick_rebalance is reachable from
        # the supervisor sweep, _declare_dead, and resume_sessions, and
        # its forward-submit runs outside _lock -- unserialized, two
        # concurrent ticks could claim the same pending session.
        self._rebalance_lock = threading.Lock()
        self._sessions: Dict[str, SessionEntry] = {}
        self._order: List[str] = []  # submission order, for listing
        self._pending: List[str] = []  # session ids awaiting (re)placement
        self._next_id = 1
        self._boot_deadlines: Dict[str, float] = {}
        self._sweeps = 0  # supervise_once invocations (terminal-sweep cadence)
        # counters for the cluster metrics plane
        self.routed = 0
        self.rebalanced_sessions = 0
        self.deaths = 0
        # router-level lifecycle counters (worker-level ones are summed
        # from /metrics scrapes; these count router-settled outcomes)
        self.cancelled_sessions = 0
        self.expired_sessions = 0
        self.reaped_sessions = 0
        self.shed_submits = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterRouter":
        """Spawn every worker, wait for health, arm the ring and ledger."""
        if self.ledger is not None:
            self.ledger.reconcile_manifest(self.config.manifest())
        if self.cache_service is not None:
            # The cache boots first so workers find a live L2 on their
            # very first miss (a late L2 would only cost misses, not
            # correctness, but there is no reason to waste them).
            self.cache_service.spawn()
            self.run_log.emit(
                "cache_service_spawn",
                port=self.cache_service.port,
                pid=self.cache_service.pid,
            )
            if not self.cache_service.wait_healthy(self.config.boot_timeout):
                self.shutdown_workers()
                raise RuntimeError(
                    "shared cache service failed to become healthy within "
                    f"{self.config.boot_timeout}s"
                )
        for worker in self.workers:
            worker.spawn()
            self.run_log.emit(
                "worker_spawn", worker=worker.name, port=worker.port, pid=worker.pid
            )
        failed = []
        for worker in self.workers:
            if worker.wait_healthy(self.config.boot_timeout):
                with self._lock:
                    self.ring.add(worker.name)
            else:
                failed.append(worker.name)
        if failed:
            self.shutdown_workers()
            raise RuntimeError(
                f"workers failed to become healthy within "
                f"{self.config.boot_timeout}s: {', '.join(failed)}"
            )
        if self.config.resume:
            self.resume_sessions()
        return self

    def shutdown_workers(self) -> Dict[str, Optional[int]]:
        """SIGTERM every worker; returns per-worker exit codes."""
        for worker in self.workers:
            if worker.process_alive():
                worker.proc.send_signal(signal.SIGTERM)
        codes = {worker.name: worker.terminate() for worker in self.workers}
        if self.cache_service is not None:
            # Stopped last: workers may flush final write-throughs while
            # draining, and a vanished L2 would burn their cooldown
            # windows for nothing.
            codes[self.cache_service.name] = self.cache_service.terminate()
        return codes

    def drain(self) -> Dict:
        """SIGTERM path for the whole tier.

        Flip the 503 gate, gracefully stop every worker (each finishes
        its in-flight broker batches before exiting), and leave open
        sessions durable in the ledger -- a tier restarted with
        ``--resume`` re-submits and finishes them with paper-faithful
        query counts.  Returns an operator summary.
        """
        self.draining = True
        # Before the workers go away, reap sessions that reached a
        # terminal state without a client ever polling them: unswept,
        # their ledger records stay open forever and --resume re-runs
        # the full attack (a budget-sized amount of wasted work).
        swept = self.sweep_terminal_sessions()
        exit_codes = self.shutdown_workers()
        with self._lock:
            open_ids = [
                entry.session_id
                for entry in self._sessions.values()
                if not entry.done
            ]
        summary = {
            "workers": len(self.workers),
            "open": len(open_ids),
            "durable": len(open_ids) if self.ledger is not None else 0,
            "swept": swept,
            "exit_codes": exit_codes,
        }
        self.run_log.emit("cluster_drain", **summary)
        if self.ledger is not None:
            self.ledger.close()
        self.run_log.close()
        return summary

    def live_workers(self) -> List[WorkerProcess]:
        with self._lock:
            return [w for w in self.workers if w.name in self.ring]

    def worker_named(self, name: str) -> Optional[WorkerProcess]:
        for worker in self.workers:
            if worker.name == name:
                return worker
        return None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _generate_id(self) -> str:
        with self._lock:
            session_id = f"c{self._next_id}"
            self._next_id += 1
            return session_id

    def _note_restored_id(self, session_id: str) -> None:
        if session_id.startswith("c") and session_id[1:].isdigit():
            with self._lock:
                self._next_id = max(self._next_id, int(session_id[1:]) + 1)

    def submit(self, body: bytes, client: str) -> Tuple[int, Dict]:
        """Route one ``POST /attacks`` to its replica by consistent hash."""
        if self.draining:
            return 503, {"error": "cluster is draining for shutdown"}
        try:
            spec = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(spec, dict):
            return 400, {"error": "request body must be a JSON object"}
        if self.config.shed_open_sessions is not None:
            with self._lock:
                open_count = sum(
                    1 for entry in self._sessions.values() if not entry.done
                )
                overloaded = open_count >= self.config.shed_open_sessions
                if overloaded:
                    self.shed_submits += 1
            if overloaded:
                return 503, {
                    "error": (
                        f"overloaded: {open_count} open sessions >= "
                        f"{self.config.shed_open_sessions}"
                    ),
                    "retry_after": self.config.shed_retry_after,
                }
        session_id = self._generate_id()
        with self._lock:
            owner = self.ring.assign(session_id)
        if owner is None:
            return 503, {"error": "no live workers", "retry_after": 1}
        status, payload = self._forward_submit(owner, session_id, spec, client)
        if status != 202:
            return status, payload
        entry = SessionEntry(session_id, spec, client, owner)
        with self._lock:
            self._sessions[session_id] = entry
            self._order.append(session_id)
            self.routed += 1
            if owner not in self.ring:
                # the owner died between forward and commit; queue the
                # session for rebalance instead of stranding it
                entry.worker = None
                self._pending.append(session_id)
        if self.ledger is not None:
            self.ledger.append(
                {"kind": "session", "id": session_id, "client": client, "spec": spec}
            )
        payload = dict(payload)
        payload["worker"] = entry.worker
        return 202, payload

    def _forward_submit(
        self, owner: str, session_id: str, spec: Dict, client: Optional[str]
    ) -> Tuple[int, Dict]:
        worker = self.worker_named(owner)
        if worker is None:
            return 503, {"error": f"no such worker: {owner}", "retry_after": 1}
        headers = {"X-Session-Id": session_id}
        if client:
            headers["X-Client-Id"] = client
        try:
            return http_json(
                worker.address,
                "POST",
                "/attacks",
                body=json.dumps(spec).encode("utf-8"),
                headers=headers,
            )
        except OSError:
            return 503, {
                "error": f"worker {owner} unreachable",
                "retry_after": 1,
            }

    def get_session(self, session_id: str) -> Tuple[int, Dict]:
        with self._lock:
            entry = self._sessions.get(session_id)
            if entry is None:
                return 404, {"error": f"no such session: {session_id}"}
            if entry.final is not None:
                return 200, entry.final
            owner = entry.worker
        if owner is None:
            return 503, {
                "error": f"session {session_id} is being rebalanced",
                "retry_after": 1,
            }
        worker = self.worker_named(owner)
        try:
            status, payload = http_json(
                worker.address, "GET", f"/attacks/{session_id}"
            )
        except OSError:
            return 503, {
                "error": f"worker {owner} unreachable; session will rebalance",
                "retry_after": 1,
            }
        if status == 410:
            # The worker's TTL reaper swept the session before any client
            # collected its terminal state: settle it at the router so the
            # ledger closes and --resume does not re-run finished work.
            return 200, self._reaped_final(entry, owner)
        if status == 200:
            payload = dict(payload)
            payload["worker"] = owner
            if payload.get("state") in _TERMINAL:
                self._mark_done(entry, payload)
        return status, payload

    def cancel_session(self, session_id: str) -> Tuple[int, Dict]:
        """``DELETE /attacks/<id>``: forward to the sticky owner.

        Mirrors the worker's semantics (202 cancellation requested, 200
        already terminal) and covers the router-only cases: a session
        awaiting (re)placement has no live generator anywhere, so the
        router settles the cancellation locally and closes its ledger
        record; a session the worker already reaped becomes a synthetic
        ``reaped`` final.
        """
        with self._lock:
            entry = self._sessions.get(session_id)
            if entry is None:
                return 404, {"error": f"no such session: {session_id}"}
            if entry.final is not None:
                return 200, entry.final
            owner = entry.worker
            if owner is None and session_id in self._pending:
                self._pending.remove(session_id)
        if owner is None:
            final = {
                "id": session_id,
                "state": "cancelled",
                "queries": None,
                "worker": None,
            }
            self._mark_done(entry, final)
            self.run_log.emit(
                "session_cancelled", session=session_id, pending=True
            )
            return 200, final
        worker = self.worker_named(owner)
        try:
            status, payload = http_json(
                worker.address, "DELETE", f"/attacks/{session_id}"
            )
        except OSError:
            return 503, {
                "error": f"worker {owner} unreachable; retry cancellation",
                "retry_after": 1,
            }
        if status == 410:
            return 200, self._reaped_final(entry, owner)
        if status in (200, 202):
            payload = dict(payload)
            payload["worker"] = owner
            if payload.get("state") in _TERMINAL:
                self._mark_done(entry, payload)
        return status, payload

    def _reaped_final(self, entry: SessionEntry, owner: Optional[str]) -> Dict:
        final = {
            "id": entry.session_id,
            "state": "reaped",
            "queries": None,
            "worker": owner,
            "error": "session reaped by worker TTL before a terminal poll",
        }
        self._mark_done(entry, final)
        self.run_log.emit("session_reaped", session=entry.session_id, worker=owner)
        return final

    def _mark_done(self, entry: SessionEntry, payload: Dict) -> None:
        with self._lock:
            first = not entry.done
            entry.done = True
            entry.final = payload
            if first:
                state = payload.get("state")
                if state == "cancelled":
                    self.cancelled_sessions += 1
                elif state == "expired":
                    self.expired_sessions += 1
                elif state == "reaped":
                    self.reaped_sessions += 1
        if first and self.ledger is not None:
            self.ledger.append({"kind": "session_done", "id": entry.session_id})

    def sweep_terminal_sessions(self) -> int:
        """Reap terminal-but-never-polled sessions from live workers.

        Client polls are the normal path to :meth:`_mark_done`; a client
        that submits and walks away leaves its finished session's ledger
        record open, so a later ``--resume`` would re-run the whole
        attack.  This sweep asks each live worker about every not-done
        session it owns and marks the terminal ones done (caching the
        final payload, closing the ledger record).  Read-only on the
        workers; returns how many sessions were reaped.
        """
        with self._lock:
            candidates = [
                (entry.session_id, entry.worker)
                for entry in self._sessions.values()
                if not entry.done and entry.worker is not None
            ]
        swept = 0
        for session_id, owner in candidates:
            worker = self.worker_named(owner)
            if worker is None or worker.state != LIVE:
                continue
            try:
                status, payload = http_json(
                    worker.address, "GET", f"/attacks/{session_id}", timeout=5.0
                )
            except OSError:
                continue  # the supervisor sweep will handle this worker
            if status == 410:
                with self._lock:
                    entry = self._sessions.get(session_id)
                    if entry is None or entry.done:
                        continue
                self._reaped_final(entry, owner)
                swept += 1
                continue
            if status != 200 or payload.get("state") not in _TERMINAL:
                continue
            with self._lock:
                entry = self._sessions.get(session_id)
                if entry is None or entry.done:
                    continue
            payload = dict(payload)
            payload["worker"] = owner
            self._mark_done(entry, payload)
            swept += 1
        if swept:
            self.run_log.emit("terminal_sweep", sessions=swept)
        return swept

    def list_sessions(self, limit: int = 200) -> Tuple[int, Dict]:
        with self._lock:
            recent = self._order[-limit:][::-1]
            sessions = [
                {
                    "id": session_id,
                    "worker": self._sessions[session_id].worker,
                    "done": self._sessions[session_id].done,
                    "client": self._sessions[session_id].client,
                }
                for session_id in recent
            ]
        return 200, {"sessions": sessions}

    def healthz(self) -> Tuple[int, Dict]:
        if self.draining:
            return 503, {"status": "draining"}
        live = self.live_workers()
        return 200, {
            "status": "ok",
            "model": self.config.model,
            "workers": {"live": len(live), "total": len(self.workers)},
        }

    def metrics(self) -> Tuple[int, Dict]:
        per_worker: Dict[str, Optional[Dict]] = {}
        for worker in self.workers:
            if worker.state != LIVE:
                per_worker[worker.name] = None
                continue
            try:
                status, payload = http_json(
                    worker.address, "GET", "/metrics", timeout=5.0
                )
                per_worker[worker.name] = payload if status == 200 else None
            except OSError:
                per_worker[worker.name] = None
        rollup = aggregate_worker_metrics(per_worker)
        with self._lock:
            rollup["cluster"] = {
                "workers": [worker.describe() for worker in self.workers],
                "live": len(self.ring),
                "routed": self.routed,
                "rebalanced_sessions": self.rebalanced_sessions,
                "deaths": self.deaths,
                "restarts": sum(worker.restarts for worker in self.workers),
                "pending_rebalance": len(self._pending),
                "sessions_tracked": len(self._sessions),
                "cancelled_sessions": self.cancelled_sessions,
                "expired_sessions": self.expired_sessions,
                "reaped_sessions": self.reaped_sessions,
                "shed_submits": self.shed_submits,
            }
        if self.cache_service is not None:
            service_stats = None
            if self.cache_service.state == LIVE:
                try:
                    status, payload = http_json(
                        self.cache_service.address, "GET", "/metrics", timeout=5.0
                    )
                    if status == 200:
                        service_stats = payload.get("shared_cache")
                except OSError:
                    pass
            rollup["shared_cache"] = {
                "slot": self.cache_service.describe(),
                "service": service_stats,
            }
        return 200, rollup

    def route(
        self, method: str, path: str, body: bytes, client: str
    ) -> Tuple[int, Dict]:
        """The router's HTTP surface; mirrors the single-process server."""
        if path == "/healthz" and method == "GET":
            return self.healthz()
        if path == "/metrics" and method == "GET":
            return self.metrics()
        if path == "/attacks" and method == "POST":
            return self.submit(body, client)
        if path == "/attacks" and method == "GET":
            return self.list_sessions()
        if path.startswith("/attacks/") and method == "GET":
            return self.get_session(path[len("/attacks/"):])
        if path.startswith("/attacks/") and method == "DELETE":
            return self.cancel_session(path[len("/attacks/"):])
        if path in ("/healthz", "/metrics", "/attacks") or path.startswith(
            "/attacks/"
        ):
            return 405, {"error": f"method {method} not allowed on {path}"}
        return 404, {"error": f"no such endpoint: {path}"}

    # ------------------------------------------------------------------
    # supervision and rebalancing
    # ------------------------------------------------------------------

    def supervise_once(self, now: Optional[float] = None) -> None:
        """One heartbeat sweep: detect deaths, promote boots, restart."""
        now = time.monotonic() if now is None else now
        for worker in self.workers:
            if worker.state in (LIVE, BOOTING):
                if not worker.process_alive():
                    self._declare_dead(worker, reason="process exited")
                elif worker.healthy(timeout=min(2.0, self.config.heartbeat * 4)):
                    worker.missed_heartbeats = 0
                    if worker.state == BOOTING:
                        worker.state = LIVE
                        with self._lock:
                            self.ring.add(worker.name)
                        self.run_log.emit(
                            "worker_live", worker=worker.name, pid=worker.pid
                        )
                elif worker.state == LIVE:
                    worker.missed_heartbeats += 1
                    if worker.missed_heartbeats >= self.config.heartbeat_misses:
                        self._declare_dead(worker, reason="heartbeat misses")
                elif now > self._boot_deadlines.get(worker.name, now + 1):
                    self._declare_dead(worker, reason="boot timeout")
            elif worker.state == DEAD and worker.next_spawn_at is not None:
                if now >= worker.next_spawn_at:
                    self._restart(worker)
        self._supervise_cache_service(now)
        self._sweeps += 1
        if self._sweeps % 4 == 0:
            # Periodic terminal-session reaping (satellite of drain's
            # sweep): closes ledger records of abandoned sessions while
            # the tier is still running, not only at shutdown.
            self.sweep_terminal_sessions()
        self.tick_rebalance()

    def _supervise_cache_service(self, now: float) -> None:
        """Heartbeat the shared-cache slot, mirroring the worker sweep.

        A dead cache is never an emergency -- every worker silently
        degrades to private-L1 behaviour and re-probes after its
        cooldown -- so death here only costs shared hits, and a restart
        (same port) is picked up by the workers with no coordination.
        """
        slot = self.cache_service
        if slot is None:
            return
        if slot.state in (LIVE, BOOTING):
            if not slot.process_alive():
                self._cache_service_dead("process exited")
            elif slot.healthy(timeout=min(2.0, self.config.heartbeat * 4)):
                slot.missed_heartbeats = 0
                if slot.state == BOOTING:
                    slot.state = LIVE
                    self.run_log.emit("cache_service_live", pid=slot.pid)
            elif slot.state == LIVE:
                slot.missed_heartbeats += 1
                if slot.missed_heartbeats >= self.config.heartbeat_misses:
                    self._cache_service_dead("heartbeat misses")
        elif slot.state == DEAD and slot.next_spawn_at is not None:
            if now >= slot.next_spawn_at:
                slot.restarts += 1
                slot.spawn()
                self.run_log.emit(
                    "cache_service_restart", restarts=slot.restarts, pid=slot.pid
                )

    def _cache_service_dead(self, reason: str) -> None:
        slot = self.cache_service
        if slot.state == DEAD:
            return
        slot.state = DEAD
        if slot.proc is not None and slot.proc.poll() is None:
            slot.kill()
        self.run_log.emit("cache_service_death", reason=reason)
        if slot.restarts < self.config.max_restarts:
            slot.next_spawn_at = time.monotonic() + self.config.backoff * (
                2 ** slot.restarts
            )
        else:
            slot.next_spawn_at = None
            self.run_log.emit(
                "cache_service_restart_exhausted", restarts=slot.restarts
            )

    def _declare_dead(self, worker: WorkerProcess, reason: str) -> None:
        """Remove a dead replica from the ring and queue its sessions."""
        if worker.state == DEAD:
            return
        worker.state = DEAD
        if worker.proc is not None and worker.proc.poll() is None:
            worker.kill()  # unresponsive but alive: make death real
        orphaned: List[str] = []
        with self._lock:
            self.ring.remove(worker.name)
            self.deaths += 1
            for entry in self._sessions.values():
                if entry.worker == worker.name and not entry.done:
                    entry.worker = None
                    orphaned.append(entry.session_id)
            self._pending.extend(orphaned)
        self.run_log.emit(
            "worker_death",
            worker=worker.name,
            reason=reason,
            orphaned_sessions=len(orphaned),
        )
        if orphaned:
            self.run_log.emit(
                "cluster_rebalance", worker=worker.name, sessions=len(orphaned)
            )
        if worker.restarts < self.config.max_restarts:
            worker.next_spawn_at = time.monotonic() + self.config.backoff * (
                2 ** worker.restarts
            )
        else:
            worker.next_spawn_at = None
            self.run_log.emit(
                "worker_restart_exhausted",
                worker=worker.name,
                restarts=worker.restarts,
            )
        self.tick_rebalance()

    def _restart(self, worker: WorkerProcess) -> None:
        worker.restarts += 1
        worker.spawn()
        self._boot_deadlines[worker.name] = (
            time.monotonic() + self.config.boot_timeout
        )
        self.run_log.emit(
            "worker_restart",
            worker=worker.name,
            restarts=worker.restarts,
            pid=worker.pid,
        )

    def tick_rebalance(self) -> int:
        """Try to place every orphaned session on a survivor.

        Re-submits each pending session's original spec under its
        original id; the deterministic attack re-runs from the start on
        the new replica, so its final query count matches an
        uninterrupted run exactly.  Sessions that cannot be placed yet
        (no live workers, capacity 429s, transport errors) stay pending
        for the next sweep.  Returns how many sessions were placed.

        Ticks are serialized: this method is reachable concurrently
        from the supervisor sweep, :meth:`_declare_dead`, and
        :meth:`resume_sessions`, and the forward-submit deliberately
        runs outside ``_lock`` (it is a worker round trip).  A second
        tick arriving while one is running returns immediately -- its
        pending sessions are picked up by the running tick's snapshot
        or by the next sweep.  Within a tick, each session id is
        *claimed* (removed from the pending list) under ``_lock``
        before the unlocked forward, and requeued only if placement
        failed, so a session can never be double-submitted, its ledger
        ``session`` record never double-appended, and
        ``rebalanced_sessions`` never double-incremented.
        """
        if not self._rebalance_lock.acquire(blocking=False):
            return 0
        try:
            with self._lock:
                pending = list(self._pending)
            placed = 0
            for session_id in pending:
                expired = False
                with self._lock:
                    entry = self._sessions.get(session_id)
                    if entry is None or entry.done or entry.worker is not None:
                        if session_id in self._pending:
                            self._pending.remove(session_id)
                        continue
                    # Deadlines ride the spec: the new owner inherits only
                    # the *remaining* wall-clock budget, so a rebalanced
                    # session expires when the original would have.  A
                    # session whose budget ran out while it waited for
                    # placement is settled here (checked before the owner
                    # assignment, so it resolves even with no live workers).
                    spec = entry.spec
                    if entry.deadline_seconds is not None:
                        remaining = entry.deadline_seconds - (
                            time.monotonic() - entry.accepted_at
                        )
                        if remaining <= 0:
                            if session_id in self._pending:
                                self._pending.remove(session_id)
                            expired = True
                        else:
                            spec = dict(entry.spec)
                            spec["deadline_seconds"] = remaining
                    if not expired:
                        owner = self.ring.assign(session_id)
                        if owner is None:
                            continue
                        # claim before the unlocked forward-submit
                        self._pending.remove(session_id)
                if expired:
                    self._mark_done(
                        entry,
                        {
                            "id": session_id,
                            "state": "expired",
                            "queries": None,
                            "worker": None,
                            "error": "deadline elapsed while awaiting placement",
                        },
                    )
                    self.run_log.emit(
                        "session_expired", session=session_id, pending=True
                    )
                    continue
                status, _payload = self._forward_submit(
                    owner, session_id, spec, entry.client
                )
                if status in (202, 409):  # 409: the replica already has it
                    with self._lock:
                        entry.worker = owner
                        self.rebalanced_sessions += 1
                    placed += 1
                    if self.ledger is not None:
                        # the rewritten spec, so a tier restart also
                        # inherits only the remaining deadline budget
                        self.ledger.append(
                            {
                                "kind": "session",
                                "id": session_id,
                                "client": entry.client,
                                "spec": spec,
                            }
                        )
                    self.run_log.emit(
                        "session_rebalanced", session=session_id, worker=owner
                    )
                else:
                    with self._lock:
                        # release the claim for the next sweep (unless a
                        # concurrent path already re-placed or finished it)
                        if (
                            entry.worker is None
                            and not entry.done
                            and session_id not in self._pending
                        ):
                            self._pending.append(session_id)
            return placed
        finally:
            self._rebalance_lock.release()

    # ------------------------------------------------------------------
    # resume
    # ------------------------------------------------------------------

    def resume_sessions(self) -> int:
        """Re-submit the ledger's open sessions after a tier restart.

        The consumed records are re-appended as the sessions are placed,
        so the ledger always reflects the live tier.  Returns how many
        sessions were queued for placement.
        """
        if self.ledger is None:
            return 0
        records, _truncated = self.ledger.records()
        open_records = open_sessions_from_records(records)
        if not open_records:
            return 0
        self.ledger.clear_records()
        with self._lock:
            for session_id, record in open_records.items():
                self._note_restored_id(session_id)
                entry = SessionEntry(
                    session_id, record["spec"], record.get("client"), None
                )
                self._sessions[session_id] = entry
                self._order.append(session_id)
                self._pending.append(session_id)
        self.run_log.emit("cluster_resume", sessions=len(open_records))
        self.tick_rebalance()
        return len(open_records)


class ClusterSupervisor(threading.Thread):
    """The heartbeat loop, as a daemon thread."""

    def __init__(self, router: ClusterRouter):
        super().__init__(name="cluster-supervisor", daemon=True)
        self.router = router
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.router.config.heartbeat):
            try:
                self.router.supervise_once()
            except Exception:  # supervision must outlive any one sweep
                pass

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=10.0)


# ----------------------------------------------------------------------
# HTTP front end (threaded: handlers block on worker round trips)
# ----------------------------------------------------------------------


class _RouterHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    router: ClusterRouter


class _RouterRequestHandler(BaseHTTPRequestHandler):
    server: _RouterHTTPServer

    def log_message(self, *args) -> None:  # silence per-request stderr
        pass

    def _client(self) -> str:
        return self.headers.get("X-Client-Id") or self.client_address[0]

    def _respond(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status in (429, 503) and "retry_after" in payload:
            self.send_header("Retry-After", str(payload["retry_after"]))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _handle(self, method: str) -> None:
        body = b""
        if method == "POST":
            length = int(self.headers.get("Content-Length", "0") or "0")
            if length > MAX_BODY_BYTES:
                self._respond(413, {"error": "request body too large"})
                return
            body = self.rfile.read(length) if length else b""
        path = self.path.split("?", 1)[0]
        try:
            status, payload = self.server.router.route(
                method, path, body, self._client()
            )
        except Exception as exc:  # route bugs must not kill the router
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._respond(status, payload)

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def do_DELETE(self) -> None:
        self._handle("DELETE")


class ClusterHandle:
    """A full tier (router + workers + supervisor) under one handle.

    The router listens in-process on a background thread while workers
    run as real subprocesses -- the same shape as production, minus the
    top-level signal handling, so tests and benchmarks can start a tier
    with ``with ClusterHandle(config) as handle:`` and read its resolved
    ``address``.
    """

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.router = ClusterRouter(config)
        self.supervisor: Optional[ClusterSupervisor] = None
        self._http: Optional[_RouterHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.address: Optional[Tuple[str, int]] = None
        self._stopped = False

    def start(self) -> "ClusterHandle":
        self.router.start()
        self._http = _RouterHTTPServer(
            (self.config.host, self.config.port), _RouterRequestHandler
        )
        self._http.router = self.router
        self.address = self._http.server_address[:2]
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="cluster-http",
            daemon=True,
            kwargs={"poll_interval": 0.1},
        )
        self._thread.start()
        self.supervisor = ClusterSupervisor(self.router)
        self.supervisor.start()
        return self

    def drain(self) -> Dict:
        """Graceful tier shutdown; idempotent.  Returns the summary."""
        if self._stopped:
            return {}
        self._stopped = True
        self.router.draining = True
        if self.supervisor is not None:
            self.supervisor.stop()
        summary = self.router.drain()
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        return summary

    def stop(self) -> None:
        self.drain()

    def __enter__(self) -> "ClusterHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def run_cluster(config: ClusterConfig) -> int:
    """Run a tier until SIGTERM/SIGINT, then drain it; returns 0.

    Shared by ``repro cluster`` and ``repro-serve --cluster N``.
    """
    stop_requested = threading.Event()

    def _request_stop(signum, frame):
        stop_requested.set()

    installed = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            installed[signum] = signal.signal(signum, _request_stop)
        except (ValueError, OSError):  # non-main thread
            pass
    handle = ClusterHandle(config)
    try:
        handle.start()
        host, port = handle.address
        print(
            f"repro-cluster: {config.workers} x {config.model} replicas "
            f"behind http://{host}:{port} "
            f"(heartbeat {config.heartbeat:.1f}s, "
            f"restarts<={config.max_restarts})"
        )
        stop_requested.wait()
        summary = handle.drain()
        print(
            f"repro-cluster: drained; {summary['open']} open sessions, "
            f"{summary['durable']} durable in the ledger"
        )
    finally:
        handle.stop()
        for signum, previous in installed.items():
            signal.signal(signum, previous)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Sharded multi-worker attack serving: N repro-serve "
        "replicas behind a consistent-hash router with health "
        "supervision, crash rebalancing, and cluster metrics",
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="worker replica processes")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8870,
                        help="router port (workers take ephemeral ports)")
    parser.add_argument(
        "--model", default="toy", choices=["toy"] + sorted(ARCHITECTURES)
    )
    parser.add_argument("--height", type=int, default=8)
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--classes", type=int, default=4, dest="num_classes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batch-size", type=int, default=32,
                        dest="max_batch_size")
    parser.add_argument("--max-wait", type=float, default=0.002)
    parser.add_argument("--cache", type=int, default=4096, dest="cache_size")
    parser.add_argument("--freeze", action="store_true",
                        help="serve replicas on the inference fast path")
    parser.add_argument("--dtype", choices=["float32", "float64"], default=None)
    parser.add_argument(
        "--latency", type=float, default=0.0,
        help="simulated per-image model seconds (benchmark knob)",
    )
    parser.add_argument(
        "--shared-cache", action="store_true", dest="shared_cache",
        help="run a shared L2 query-cache process; workers consult it "
        "on L1 miss and write scored entries through (results are "
        "bit-identical either way; saves cross-replica forward passes)",
    )
    parser.add_argument(
        "--shared-cache-size", type=int, default=65536,
        dest="shared_cache_size",
        help="entries in the shared L2 bounded LRU",
    )
    parser.add_argument("--max-sessions", type=int, default=64)
    parser.add_argument("--rate", type=float, default=50.0)
    parser.add_argument("--burst", type=float, default=20.0)
    parser.add_argument("--heartbeat", type=float, default=0.5)
    parser.add_argument("--max-restarts", type=int, default=3)
    parser.add_argument("--backoff", type=float, default=0.5)
    parser.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="durable session ledger: open sessions survive worker "
        "crashes and whole-tier restarts",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="re-submit open sessions from --checkpoint on startup",
    )
    parser.add_argument("--log", default=None, dest="log_path",
                        help="cluster_event JSONL telemetry file")
    parser.add_argument(
        "--scalar-steps", action="store_true",
        help="pin every worker to the legacy one-query-at-a-time "
        "stepping protocol (bit-identical; differential escape hatch)",
    )
    parser.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline applied by workers to submissions "
        "that omit deadline_seconds",
    )
    parser.add_argument(
        "--max-deadline", type=float, default=None, metavar="SECONDS",
        help="hard cap on requested deadline_seconds (workers 400 larger)",
    )
    parser.add_argument(
        "--session-ttl", type=float, default=None, dest="session_ttl",
        metavar="SECONDS",
        help="worker TTL: reap finished sessions unpolled this long "
        "(the router settles them and closes their ledger records)",
    )
    parser.add_argument(
        "--idle-ttl", type=float, default=None, dest="idle_ttl",
        metavar="SECONDS",
        help="worker TTL: cancel live sessions no client has polled "
        "for this long",
    )
    parser.add_argument(
        "--reap-interval", type=float, default=1.0, dest="reap_interval",
        metavar="SECONDS", help="worker TTL reaper cadence",
    )
    parser.add_argument(
        "--shed-queue-depth", type=int, default=None, dest="shed_queue_depth",
        metavar="N",
        help="per-worker overload shedding: 503 + Retry-After while the "
        "broker queue holds >= N pending queries",
    )
    parser.add_argument(
        "--shed-sessions", type=int, default=None, dest="shed_sessions",
        metavar="N",
        help="per-worker overload shedding: 503 while >= N sessions live",
    )
    parser.add_argument(
        "--shed-retry-after", type=float, default=1.0,
        dest="shed_retry_after", metavar="SECONDS",
        help="Retry-After value sent with shed (503) responses",
    )
    parser.add_argument(
        "--shed-open-sessions", type=int, default=None,
        dest="shed_open_sessions", metavar="N",
        help="router-level overload shedding: refuse new submits with "
        "503 while >= N sessions are open tier-wide",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = ClusterConfig(**vars(args))
    try:
        return run_cluster(config)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
