"""Cluster-wide metrics: per-worker snapshots rolled up into one plane.

Each worker already exposes a complete ``/metrics`` document (broker
counters, batch-size histograms, cache hits, session states).  The
router's job is purely additive: fetch every live worker's snapshot and
fold them into cluster totals without losing the per-replica view --
operators need both "the tier answered 40k queries at a 0.31 cluster
cache hit rate" and "worker w2's queue is 10x deeper than the others".

Histogram merging relies on the serve layer's fixed default bounds
(:class:`~repro.serve.metrics.Histogram`): same bucket labels on every
worker, so bucket-wise addition is exact.  Means are recomputed from
merged totals rather than averaged-of-averages.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def merge_histograms(snapshots: List[Dict]) -> Dict:
    """Fold per-worker histogram snapshots into one cluster histogram."""
    merged: Dict = {"count": 0, "mean": 0.0, "max": 0.0, "buckets": {}}
    total = 0.0
    for snapshot in snapshots:
        if not snapshot:
            continue
        count = snapshot.get("count", 0)
        merged["count"] += count
        total += snapshot.get("mean", 0.0) * count
        merged["max"] = max(merged["max"], snapshot.get("max", 0.0))
        for label, value in snapshot.get("buckets", {}).items():
            merged["buckets"][label] = merged["buckets"].get(label, 0) + value
    if merged["count"]:
        merged["mean"] = total / merged["count"]
    return merged


def merge_cache_stats(per_worker: Dict[str, Optional[Dict]]) -> Dict:
    """Cluster-level cache rollup over per-replica caches.

    With private caches only (each worker warms its own), the rollup
    answers the capacity question -- what fraction of the tier's logical
    queries were absorbed before a model forward pass -- while the
    per-worker map keeps each replica's hit rate visible.  When any
    worker runs a :class:`~repro.runtime.cache.TieredQueryCache` (its
    stats carry an ``l2`` sub-document), the rollup additionally sums
    the shared-tier view: ``l2_hits``/``l2_misses`` (L1 misses answered
    remotely vs. paid as forward passes), the derived
    ``shared_hit_rate``, and the per-worker L2 round-trip histograms
    merged bucket-wise.  The l2 keys only appear when some worker
    reports them, so a private-cache tier's rollup is unchanged.
    """
    hits = misses = 0
    l2_hits = l2_misses = l2_stores = l2_errors = 0
    rtt_histograms: List[Dict] = []
    sized = False
    tiered = False
    for stats in per_worker.values():
        if not stats:
            continue
        sized = True
        hits += stats.get("hits", 0)
        misses += stats.get("misses", 0)
        l2 = stats.get("l2")
        if l2:
            tiered = True
            l2_hits += l2.get("hits", 0)
            l2_misses += l2.get("misses", 0)
            l2_stores += l2.get("stores", 0)
            l2_errors += l2.get("errors", 0)
            rtt_histograms.append(l2.get("rtt_ms", {}))
    total = hits + misses
    cluster: Optional[Dict] = None
    if sized:
        cluster = {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
        }
        if tiered:
            l2_total = l2_hits + l2_misses
            cluster["l2_hits"] = l2_hits
            cluster["l2_misses"] = l2_misses
            cluster["l2_stores"] = l2_stores
            cluster["l2_errors"] = l2_errors
            cluster["shared_hit_rate"] = (
                (l2_hits / l2_total) if l2_total else 0.0
            )
            cluster["l2_rtt_ms"] = merge_histograms(rtt_histograms)
    return {"per_worker": per_worker, "cluster": cluster}


def aggregate_worker_metrics(per_worker: Dict[str, Optional[Dict]]) -> Dict:
    """Fold worker ``/metrics`` documents into the cluster rollup.

    ``per_worker`` maps worker name to its metrics payload, or ``None``
    for a worker that could not be scraped (dead or mid-restart); those
    are reported in ``unscraped`` rather than silently averaged away.
    """
    broker_totals = {
        "submitted": 0,
        "flushes": 0,
        "coalesced_duplicates": 0,
        "rejected": 0,
    }
    batch_histograms: List[Dict] = []
    model_histograms: List[Dict] = []
    caches: Dict[str, Optional[Dict]] = {}
    sessions_in_flight = 0
    queue_depth = 0
    session_states: Dict[str, int] = {}
    lifecycle = {"cancelled": 0, "expired": 0, "reaped": 0, "shed": 0}
    unscraped: List[str] = []

    for name, payload in per_worker.items():
        if payload is None:
            unscraped.append(name)
            continue
        broker = payload.get("broker", {})
        for key in broker_totals:
            broker_totals[key] += broker.get(key, 0)
        batch_histograms.append(broker.get("batch_sizes", {}))
        model_histograms.append(broker.get("model_batch_sizes", {}))
        caches[name] = broker.get("cache")
        sessions_in_flight += payload.get("sessions_in_flight", 0)
        queue_depth += payload.get("broker_queue_depth", 0)
        for state, count in payload.get("sessions", {}).get("states", {}).items():
            session_states[state] = session_states.get(state, 0) + count
        for key in lifecycle:
            lifecycle[key] += payload.get("lifecycle", {}).get(key, 0) or 0

    return {
        "broker": {
            **broker_totals,
            "batch_sizes": merge_histograms(batch_histograms),
            "model_batch_sizes": merge_histograms(model_histograms),
        },
        "cache": merge_cache_stats(caches),
        "sessions_in_flight": sessions_in_flight,
        "broker_queue_depth": queue_depth,
        "session_states": session_states,
        # worker-level lifecycle counter sums; the router adds its own
        # router-settled counters under the ``cluster`` sub-document
        "lifecycle": lifecycle,
        "unscraped": sorted(unscraped),
    }
