"""Cluster tier configuration.

One :class:`ClusterConfig` describes the whole tier: how many worker
processes to run, the model every replica serves (all workers build the
*same* deterministic classifier -- same architecture, same seed -- so a
session produces identical scores no matter which replica answers it),
the router's listen address, and the supervision knobs (heartbeat
cadence, restart budget, backoff).

The worker-side fields deliberately mirror
:class:`~repro.serve.server.ServeConfig`: a cluster worker *is* a
``repro-serve`` process, spawned with :func:`worker_argv`, so every
serve-layer behaviour (micro-batching, admission, drain) is inherited
rather than re-implemented.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class ClusterConfig:
    """Everything needed to assemble a sharded serve tier."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 8870  # the router; workers take ephemeral loopback ports

    # -- model replica (identical on every worker) ---------------------
    model: str = "toy"
    height: int = 8
    width: int = 8
    num_classes: int = 4
    seed: int = 0
    freeze: bool = False
    dtype: Optional[str] = None
    latency: float = 0.0  # simulated per-image model cost (benchmarks)

    # -- per-worker serve knobs ----------------------------------------
    max_batch_size: int = 32
    max_wait: float = 0.002
    cache_size: int = 4096
    max_sessions: int = 64
    max_threads: int = 16  # session-driver threads per worker
    rate: float = 50.0
    burst: float = 20.0
    scalar_steps: bool = False  # pin workers to legacy scalar stepping

    # -- session lifecycle ---------------------------------------------
    #: Deadline applied to submissions that omit ``deadline_seconds``.
    default_deadline: Optional[float] = None
    #: Hard cap on requested deadlines (worker rejects larger with 400).
    max_deadline: Optional[float] = None
    #: Worker TTL reaper: age out terminal-but-unpolled sessions (the
    #: router closes their ledger records when a poll comes back 410) /
    #: cancel live-but-abandoned ones.
    session_ttl: Optional[float] = None
    idle_ttl: Optional[float] = None
    reap_interval: float = 1.0
    #: Worker-level overload shedding watermarks (503 + Retry-After).
    shed_queue_depth: Optional[int] = None
    shed_sessions: Optional[int] = None
    shed_retry_after: float = 1.0
    #: Router-level shedding: refuse new submits while this many
    #: sessions are open tier-wide (``None`` disables).
    shed_open_sessions: Optional[int] = None

    # -- supervision ---------------------------------------------------
    heartbeat: float = 0.5  # seconds between worker health sweeps
    heartbeat_misses: int = 3  # consecutive failures before death
    max_restarts: int = 3  # per worker slot, over the tier's lifetime
    backoff: float = 0.5  # restart delay base; doubles per restart
    boot_timeout: float = 30.0  # seconds for a worker to become healthy

    # -- shared L2 cache tier ------------------------------------------
    #: Run a supervised shared-cache process (repro.cluster.cacheservice)
    #: and point every worker's TieredQueryCache at it.  Off by default:
    #: results are bit-identical either way, the shared tier only saves
    #: cross-replica forward passes.
    shared_cache: bool = False
    shared_cache_size: int = 65536  # entries in the L2 bounded LRU

    # -- durability and telemetry --------------------------------------
    checkpoint: Optional[str] = None  # router session ledger directory
    resume: bool = False
    log_path: Optional[str] = None  # cluster_event JSONL

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.heartbeat <= 0:
            raise ValueError("heartbeat must be positive")
        if self.heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be at least 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.backoff < 0:
            raise ValueError("backoff must be non-negative")

    def manifest(self) -> dict:
        """The identity the router ledger pins; resuming sessions under a
        different model would silently change every restored score."""
        return {
            "kind": "cluster",
            "model": self.model,
            "height": self.height,
            "width": self.width,
            "num_classes": self.num_classes,
            "seed": self.seed,
        }


def worker_argv(
    config: ClusterConfig, port: int, shared_cache: Optional[str] = None
) -> List[str]:
    """The ``repro-serve`` command line for one worker replica.

    ``shared_cache`` is the ``HOST:PORT`` of the tier's L2 cache
    service; when given, the worker wraps its private cache in a
    :class:`~repro.runtime.cache.TieredQueryCache` pointed at it.
    """
    argv = [
        sys.executable,
        "-m",
        "repro.serve",
        "--host",
        "127.0.0.1",
        "--port",
        str(port),
        "--model",
        config.model,
        "--height",
        str(config.height),
        "--width",
        str(config.width),
        "--classes",
        str(config.num_classes),
        "--seed",
        str(config.seed),
        "--batch-size",
        str(config.max_batch_size),
        "--max-wait",
        str(config.max_wait),
        "--cache",
        str(config.cache_size),
        "--max-sessions",
        str(config.max_sessions),
        "--workers",
        str(config.max_threads),
        "--rate",
        str(config.rate),
        "--burst",
        str(config.burst),
    ]
    if config.freeze:
        argv.append("--freeze")
    if config.dtype:
        argv.extend(["--dtype", config.dtype])
    if config.latency > 0:
        argv.extend(["--latency", str(config.latency)])
    if config.scalar_steps:
        argv.append("--scalar-steps")
    if shared_cache:
        argv.extend(["--shared-cache", shared_cache])
    if config.default_deadline is not None:
        argv.extend(["--default-deadline", str(config.default_deadline)])
    if config.max_deadline is not None:
        argv.extend(["--max-deadline", str(config.max_deadline)])
    if config.session_ttl is not None:
        argv.extend(["--session-ttl", str(config.session_ttl)])
    if config.idle_ttl is not None:
        argv.extend(["--idle-ttl", str(config.idle_ttl)])
    if config.reap_interval != 1.0:
        argv.extend(["--reap-interval", str(config.reap_interval)])
    if config.shed_queue_depth is not None:
        argv.extend(["--shed-queue-depth", str(config.shed_queue_depth)])
    if config.shed_sessions is not None:
        argv.extend(["--shed-sessions", str(config.shed_sessions)])
    if config.shed_retry_after != 1.0:
        argv.extend(["--shed-retry-after", str(config.shed_retry_after)])
    return argv
