"""repro.cluster -- sharded multi-worker serving for attack sessions.

A cluster is N ``repro-serve`` worker processes, each owning a frozen
model replica with its own micro-batch broker and query cache, behind a
front-end router that shards sessions across workers by consistent hash
of the session id.  The router supervises worker health (heartbeats,
crash detection, bounded restart with backoff), rebalances a dead
worker's open sessions onto survivors via a durable session ledger, and
aggregates per-worker metrics into a cluster-wide ``/metrics`` plane.

Entry points: ``repro cluster --workers N`` and
``repro-serve --cluster N``; in-process, use :class:`ClusterHandle`.
"""

from repro.cluster.config import ClusterConfig, worker_argv
from repro.cluster.hashing import HashRing
from repro.cluster.metrics import (
    aggregate_worker_metrics,
    merge_cache_stats,
    merge_histograms,
)
from repro.cluster.router import (
    ClusterHandle,
    ClusterRouter,
    ClusterSupervisor,
    open_sessions_from_records,
    run_cluster,
)
from repro.cluster.workers import WorkerProcess, free_port, http_json

__all__ = [
    "ClusterConfig",
    "ClusterHandle",
    "ClusterRouter",
    "ClusterSupervisor",
    "HashRing",
    "WorkerProcess",
    "aggregate_worker_metrics",
    "free_port",
    "http_json",
    "merge_cache_stats",
    "merge_histograms",
    "open_sessions_from_records",
    "run_cluster",
    "worker_argv",
]
