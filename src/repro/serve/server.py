"""The asyncio HTTP front end of the attack service.

A deliberately small HTTP/1.1 server (stdlib only -- ``asyncio`` streams
plus hand-rolled request parsing) exposing the serving stack as JSON
endpoints:

========================  =====================================================
``POST /attacks``         submit an attack (see :mod:`repro.serve.protocol`);
                          returns ``202`` with the session id, ``429`` when
                          admission control or the per-client rate limiter
                          sheds the request
``GET /attacks``          recent sessions, newest first
``GET /attacks/{id}``     one session's status and (when done) its result;
                          ``410`` once the TTL reaper has swept it
``DELETE /attacks/{id}``  request cancellation; the driver parks the
                          session at its next query boundary (``202``,
                          idempotent; ``200`` when already terminal)
``GET /models``           architectures from :mod:`repro.models.registry`
                          plus the toy model, flagging which one is serving
``GET /healthz``          liveness
``GET /metrics``          broker batch-size histograms, queue depth, cache
                          hit rate, per-session query counts, admission and
                          rate-limit counters
========================  =====================================================

Request handlers never block on model work: ``POST /attacks`` hands the
session to the :class:`~repro.serve.sessions.SessionManager`'s worker
pool and returns immediately; clients poll ``GET /attacks/{id}``.  Every
response closes the connection -- the protocol is strictly one request
per connection, which keeps the parser honest and is plenty for a
polling workload.

:class:`ServerHandle` runs the event loop on a background thread so
tests, the CI smoke check, and :mod:`examples.serve_clients` can start a
real server in-process and talk to it over a loopback socket.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.classifier.blackbox import NetworkClassifier
from repro.classifier.toy import SmoothLinearClassifier
from repro.models.registry import ARCHITECTURES, build_model
from repro.runtime.cache import QueryCache, normalized_cache_size
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.events import RunLog, ensure_log
from repro.serve.admission import AdmissionControl, OverloadPolicy, RateLimiter
from repro.serve.broker import BatchPolicy, MicroBatchBroker
from repro.serve.protocol import ProtocolError, decode_attack_request
from repro.serve.sessions import SessionManager

#: Request bodies above this size are rejected with 413 before parsing.
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServeConfig:
    """Everything needed to assemble a serving stack."""

    host: str = "127.0.0.1"
    port: int = 8871
    model: str = "toy"  # "toy" or a registry architecture name
    height: int = 8
    width: int = 8
    num_classes: int = 4
    seed: int = 0
    max_batch_size: int = 32
    max_wait: float = 0.002
    cache_size: int = 4096
    max_sessions: int = 64
    max_workers: int = 16
    rate: float = 50.0  # per-client submissions per second
    burst: float = 20.0
    log_path: Optional[str] = None
    freeze: bool = False  # serve network models on the inference fast path
    dtype: Optional[str] = None  # "float32" casts network models for speed
    checkpoint: Optional[str] = None  # durable session store for graceful drain
    resume: bool = False  # restore persisted sessions on startup
    latency: float = 0.0  # simulated per-image model seconds (benchmarks)
    #: ``--scalar-steps``: pin sessions to the legacy one-query-at-a-time
    #: protocol instead of batch-native stepping (bit-identical results
    #: either way; this is the differential escape hatch).
    scalar_steps: bool = False
    #: ``--shared-cache HOST:PORT``: wrap the private query cache in a
    #: :class:`~repro.runtime.cache.TieredQueryCache` pointed at a
    #: shared L2 cache service (:mod:`repro.cluster.cacheservice`).
    #: Results are bit-identical with or without it; the shared tier
    #: only saves forward passes other replicas already paid.  ``None``
    #: keeps the cache private; requires ``cache_size > 0`` (a disabled
    #: cache has no L1 tier to promote shared hits into).
    shared_cache: Optional[str] = None
    #: Entries in the shared L2 LRU; only consulted by the cluster
    #: branch, which owns the cache service process.
    shared_cache_size: int = 65536
    #: Wall-clock deadline applied to submissions that omit
    #: ``deadline_seconds`` (``None`` leaves them unbounded).
    default_deadline: Optional[float] = None
    #: Hard cap on any requested ``deadline_seconds``; a request asking
    #: for more is rejected with 400.
    max_deadline: Optional[float] = None
    #: TTL reaper policy (see :class:`~repro.serve.sessions.
    #: SessionManager`): terminal sessions unpolled this long are
    #: dropped from the poll table (-> 410 Gone) ...
    session_ttl: Optional[float] = None
    #: ... and live sessions unpolled this long are cancelled.
    idle_ttl: Optional[float] = None
    reap_interval: float = 1.0
    #: Overload shedding watermarks: submissions get 503 + Retry-After
    #: when broker queue depth / active sessions reach these.
    shed_queue_depth: Optional[int] = None
    shed_sessions: Optional[int] = None
    shed_retry_after: float = 1.0


class PerImageLatencyClassifier:
    """A classifier that charges a fixed wall-clock cost per image.

    Turns the toy model into a stand-in for a compute-bound replica:
    scoring N images costs N * latency seconds of model time no matter
    how they are batched.  Deliberately exposes no ``batch`` method --
    :func:`~repro.classifier.blackbox.batch_scores` then falls back to
    per-image calls, so the simulated cost scales with queries answered,
    which is what cluster scaling benchmarks need to measure (a
    per-*batch* cost would be amortised away by the broker and show no
    difference between one worker and four).
    """

    def __init__(self, inner, latency: float):
        self._inner = inner
        self.latency = float(latency)

    def __call__(self, image):
        time.sleep(self.latency)
        return self._inner(image)

    def __getattr__(self, name):
        if name == "batch":  # force the per-image batch_scores fallback
            raise AttributeError("batch")
        return getattr(self._inner, name)


def build_classifier(config: ServeConfig):
    """The model a config names: toy by default, registry otherwise.

    ``freeze`` and ``dtype`` select the inference fast path for network
    models (batch-norm folding, buffer reuse, optional float32 compute).
    They change per-query latency only -- never how many submissions a
    session is charged -- but frozen or float32 scores are merely
    float-tolerance-close to the default float64 eval path, so leave
    both off when serving runs pinned by bit-exact differential tests.
    The toy classifier has no network to freeze; both knobs are no-ops.
    """
    shape = (config.height, config.width, 3)
    if config.model == "toy":
        classifier = SmoothLinearClassifier(
            image_shape=shape, num_classes=config.num_classes, seed=config.seed
        )
    else:
        model = build_model(
            config.model, num_classes=config.num_classes, seed=config.seed
        )
        dtype = np.dtype(config.dtype) if config.dtype else None
        classifier = NetworkClassifier(model, dtype=dtype, freeze=config.freeze)
    if config.latency > 0:
        classifier = PerImageLatencyClassifier(classifier, config.latency)
    return classifier


class AttackServer:
    """The assembled serving stack behind the HTTP routes."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.run_log = ensure_log(
            RunLog(config.log_path) if config.log_path else None
        )
        self.classifier = build_classifier(config)
        cache_size = normalized_cache_size(config.cache_size)
        self.cache = QueryCache(cache_size) if cache_size is not None else None
        if self.cache is not None and config.shared_cache:
            # Lazy import: the serve layer stays cluster-free unless a
            # shared tier is actually configured.
            from repro.cluster.cacheservice import (
                HttpSharedCacheClient,
                parse_cache_address,
            )
            from repro.runtime.cache import TieredQueryCache

            address = parse_cache_address(config.shared_cache)
            self.cache = TieredQueryCache(
                self.cache, HttpSharedCacheClient(address)
            )
        self.broker = MicroBatchBroker(
            self.classifier,
            policy=BatchPolicy(
                max_batch_size=config.max_batch_size, max_wait=config.max_wait
            ),
            cache=self.cache,
            run_log=self.run_log,
        )
        self.sessions = SessionManager(
            self.broker,
            max_workers=config.max_workers,
            run_log=self.run_log,
            # Batch-native stepping by default: sessions speculate up to
            # one broker batch per step.  0 pins the legacy scalar path.
            step_batch=0 if config.scalar_steps else config.max_batch_size,
            session_ttl=config.session_ttl,
            idle_ttl=config.idle_ttl,
        )
        self.admission = AdmissionControl(config.max_sessions)
        self.rate_limiter = RateLimiter(rate=config.rate, burst=config.burst)
        self.overload = OverloadPolicy(
            max_queue_depth=config.shed_queue_depth,
            max_active=config.shed_sessions,
            retry_after=config.shed_retry_after,
        )
        self.checkpoint = (
            CheckpointStore(config.checkpoint) if config.checkpoint else None
        )
        self.draining = False
        self._stopped = False

    def start(self) -> None:
        self.broker.start()
        if self.config.session_ttl is not None or self.config.idle_ttl is not None:
            self.sessions.start_reaper(self.config.reap_interval)
        if self.config.resume:
            self.restore_sessions()

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.sessions.shutdown()
        self.broker.stop()
        self.run_log.close()

    # ------------------------------------------------------------------
    # graceful shutdown and resume
    # ------------------------------------------------------------------

    def drain_and_stop(self) -> Dict:
        """SIGTERM path: finish in-flight batches, persist open sessions.

        New submissions are rejected with 503 from the moment the flag
        flips; session drivers park at their next query boundary (the
        broker still answers every query already in flight); parked and
        still-queued sessions are written to the checkpoint store; then
        the broker and telemetry shut down.  Returns a summary dict for
        the operator ("persisted 3/3 open sessions").

        Restored sessions re-run their deterministic attacks from the
        start on the next boot, so their final query counts are exactly
        what an uninterrupted run would have charged (see
        :meth:`~repro.serve.sessions.AttackSession.suspend`).
        """
        self.draining = True
        open_sessions = self.sessions.drain()
        persisted = skipped = 0
        if self.checkpoint is not None:
            self.checkpoint.reconcile_manifest(self._checkpoint_manifest())
            for session in open_sessions:
                if session.spec is None:
                    skipped += 1  # programmatic session: nothing to rebuild from
                    continue
                self.checkpoint.append(
                    {
                        "kind": "session",
                        "id": session.session_id,
                        "client": session.client,
                        "queries": session.queries,
                        "state": session.state,
                        "spec": session.spec,
                    }
                )
                persisted += 1
            self.checkpoint.close()
        summary = {
            "open": len(open_sessions),
            "persisted": persisted,
            "unpersistable": skipped,
        }
        self.run_log.emit("serve_drain", **summary)
        self.broker.stop()
        self.run_log.close()
        self._stopped = True
        return summary

    def _checkpoint_manifest(self) -> Dict:
        """Identity of the serving stack; a resume under a different
        model would silently change every restored session's scores."""
        return {
            "kind": "serve",
            "model": self.config.model,
            "height": self.config.height,
            "width": self.config.width,
            "num_classes": self.config.num_classes,
            "seed": self.config.seed,
        }

    def restore_sessions(self) -> int:
        """Rebuild persisted sessions from the checkpoint and restart them.

        Each record's original request is re-decoded through the same
        protocol path as a live submission, re-created under its original
        session id (clients polling across the restart keep their
        handle), and handed to the driver pool.  The consumed records are
        then cleared -- the restored sessions now live in memory and will
        be re-persisted by the next graceful drain.  Returns the number
        of sessions restored.
        """
        if self.checkpoint is None:
            return 0
        self.checkpoint.reconcile_manifest(self._checkpoint_manifest())
        records, _truncated = self.checkpoint.records()
        by_id: Dict[str, Dict] = {}
        for record in records:
            if record.get("kind") == "session":
                by_id[record["id"]] = record  # latest drain wins per id
        restored = 0
        for session_id, record in by_id.items():
            try:
                request = decode_attack_request(record["spec"])
            except ProtocolError as exc:
                self.run_log.emit(
                    "session_restore_failed", session=session_id, error=str(exc)
                )
                continue
            deadline = request.deadline_seconds
            if deadline is None:
                deadline = self.config.default_deadline
            session = self.sessions.create(
                request.attack,
                request.image,
                request.true_class,
                budget=request.budget,
                target_class=request.target_class,
                client=record.get("client"),
                spec=record["spec"],
                session_id=session_id,
                deadline_seconds=deadline,
            )
            self.sessions.start(session)
            self.run_log.emit(
                "session_restored",
                session=session_id,
                attack=request.attack_name,
                queries_at_suspend=record.get("queries"),
            )
            restored += 1
        if by_id:
            self.checkpoint.clear_records()
        return restored

    # ------------------------------------------------------------------
    # route handlers: (status, payload)
    # ------------------------------------------------------------------

    def handle_submit(
        self, body: bytes, client: str, session_id: Optional[str] = None
    ) -> Tuple[int, Dict]:
        """Accept one attack submission.

        ``session_id`` lets a trusted upstream (the cluster router) pin
        the session's id so its own sharding and rebalance bookkeeping
        stay authoritative; a duplicate id is a 409 conflict.
        """
        if self.draining:
            return 503, {"error": "server is draining for shutdown"}
        shed_reason = self.overload.should_shed(
            self.broker.queue_depth, self.sessions.active_count()
        )
        if shed_reason is not None:
            return 503, {
                "error": f"overloaded: {shed_reason}",
                "retry_after": self.overload.retry_after,
            }
        if not self.rate_limiter.allow(client):
            return 429, {"error": "rate limit exceeded", "retry_after": 1}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        try:
            request = decode_attack_request(payload)
        except ProtocolError as exc:
            return exc.status, {"error": str(exc)}
        deadline = request.deadline_seconds
        if deadline is None:
            deadline = self.config.default_deadline
        elif (
            self.config.max_deadline is not None
            and deadline > self.config.max_deadline
        ):
            return 400, {
                "error": (
                    f"deadline_seconds {deadline} exceeds the server maximum "
                    f"{self.config.max_deadline}"
                )
            }
        if not self.admission.try_acquire():
            return 429, {
                "error": "server at capacity",
                "active_sessions": self.admission.active,
                "retry_after": 1,
            }
        # From here the slot is held; every exit path must either hand
        # its release to the driver future or release it inline.
        try:
            session = self.sessions.create(
                request.attack,
                request.image,
                request.true_class,
                budget=request.budget,
                target_class=request.target_class,
                client=client,
                spec=payload,
                session_id=session_id,
                deadline_seconds=deadline,
            )
        except ValueError as exc:
            self.admission.release()
            return 409, {"error": str(exc)}
        except BaseException:
            self.admission.release()
            raise
        try:
            future = self.sessions.start(session)
        except Exception as exc:  # executor rejected the drive
            session.fail(exc)
            self.admission.release()
            return 503, {
                "error": f"could not start session: {exc}",
                "retry_after": self.overload.retry_after,
            }
        future.add_done_callback(lambda _: self.admission.release())
        return 202, {"id": session.session_id, "state": session.state}

    def handle_cancel(self, session_id: str) -> Tuple[int, Dict]:
        """``DELETE /attacks/<id>``: park the session at its next boundary.

        Cancellation is asynchronous and idempotent: the driver honors
        the flag at the next query boundary (after the in-flight broker
        batch settles, so co-batched sessions are unaffected), a second
        DELETE is a no-op, and DELETE on an already-terminal session
        returns its final status unchanged (200 rather than an error, so
        retrying clients converge).
        """
        session = self.sessions.get(session_id)
        if session is None:
            if self.sessions.was_reaped(session_id):
                return 410, {"error": f"session {session_id} was reaped"}
            return 404, {"error": f"no such session: {session_id}"}
        session.touch()
        if session.request_cancel():
            self.run_log.emit(
                "session_cancel_requested",
                session=session_id,
                queries=session.queries,
            )
            return 202, session.to_dict()
        return 200, session.to_dict()

    def handle_get_session(self, session_id: str) -> Tuple[int, Dict]:
        session = self.sessions.get(session_id)
        if session is None:
            if self.sessions.was_reaped(session_id):
                return 410, {"error": f"session {session_id} was reaped"}
            return 404, {"error": f"no such session: {session_id}"}
        session.touch()
        return 200, session.to_dict()

    def handle_list_sessions(self) -> Tuple[int, Dict]:
        return 200, {"sessions": self.sessions.list_sessions()}

    def handle_models(self) -> Tuple[int, Dict]:
        models = [
            {
                "name": "toy",
                "kind": "toy",
                "description": "SmoothLinearClassifier with locality structure",
            }
        ]
        for name in sorted(ARCHITECTURES):
            models.append(
                {
                    "name": name,
                    "kind": "network",
                    "description": ARCHITECTURES[name].__name__,
                }
            )
        for entry in models:
            entry["serving"] = entry["name"] == self.config.model
        return 200, {"models": models}

    def handle_metrics(self) -> Tuple[int, Dict]:
        return 200, {
            "broker": self.broker.stats(),
            "sessions": {
                "states": self.sessions.states(),
                "active": self.sessions.active_count(),
                "query_counts": self.sessions.query_counts(),
            },
            # top-level gauges: what a load balancer or the cluster
            # router needs without digging through nested documents
            "sessions_in_flight": self.sessions.active_count(),
            "broker_queue_depth": self.broker.queue_depth,
            "admission": self.admission.stats(),
            "rate_limiter": self.rate_limiter.stats(),
            "overload": self.overload.stats(),
            "lifecycle": {
                **self.sessions.lifecycle_stats(),
                "shed": self.overload.shed,
            },
        }

    def route(
        self,
        method: str,
        path: str,
        body: bytes,
        client: str,
        session_id: Optional[str] = None,
    ):
        if path == "/healthz" and method == "GET":
            if self.draining:
                return 503, {"status": "draining"}
            return 200, {"status": "ok", "model": self.config.model}
        if path == "/metrics" and method == "GET":
            return self.handle_metrics()
        if path == "/models" and method == "GET":
            return self.handle_models()
        if path == "/attacks" and method == "POST":
            return self.handle_submit(body, client, session_id=session_id)
        if path == "/attacks" and method == "GET":
            return self.handle_list_sessions()
        if path.startswith("/attacks/") and method == "GET":
            return self.handle_get_session(path[len("/attacks/"):])
        if path.startswith("/attacks/") and method == "DELETE":
            return self.handle_cancel(path[len("/attacks/"):])
        if path in ("/healthz", "/metrics", "/models", "/attacks") or path.startswith(
            "/attacks/"
        ):
            return 405, {"error": f"method {method} not allowed on {path}"}
        return 404, {"error": f"no such endpoint: {path}"}


def _response_bytes(status: int, payload: Dict, extra_headers: Dict = None) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for key, value in (extra_headers or {}).items():
        headers.append(f"{key}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request: (method, path, headers, body)."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("empty request")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ProtocolError("malformed request line")
    method, target, _version = parts
    path = target.split("?", 1)[0]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ProtocolError("request body too large", status=413)
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


async def _handle_connection(
    server: AttackServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            method, path, headers, body = await _read_request(reader)
        except ProtocolError as exc:
            writer.write(_response_bytes(exc.status, {"error": str(exc)}))
            await writer.drain()
            return
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            return
        peer = writer.get_extra_info("peername")
        client = headers.get("x-client-id") or (peer[0] if peer else "unknown")
        session_id = headers.get("x-session-id") or None
        try:
            status, payload = server.route(
                method, path, body, client, session_id=session_id
            )
        except Exception as exc:  # route bugs must not kill the server
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        extra = (
            {"Retry-After": payload["retry_after"]}
            if status in (429, 503) and "retry_after" in payload
            else None
        )
        writer.write(_response_bytes(status, payload, extra))
        await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve(server: AttackServer) -> None:
    """Run the server until cancelled or signalled; drain gracefully.

    SIGTERM and SIGINT trigger the graceful-shutdown path: the listening
    socket keeps accepting connections so clients get explicit 503s
    instead of connection refusals, in-flight broker batches complete,
    open sessions are persisted to the checkpoint store (when one is
    configured), and the coroutine returns normally so the process can
    exit 0.
    """
    server.start()
    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_requested.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # non-main thread, Windows
            pass
    tcp = await asyncio.start_server(
        lambda r, w: _handle_connection(server, r, w),
        host=server.config.host,
        port=server.config.port,
    )
    try:
        async with tcp:
            await stop_requested.wait()
            # Flip the 503 gate before the blocking drain so requests
            # racing the shutdown are rejected, not stalled.
            server.draining = True
            summary = await loop.run_in_executor(None, server.drain_and_stop)
            print(
                f"repro-serve: drained; {summary['persisted']}/"
                f"{summary['open']} open sessions persisted"
            )
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        server.stop()


class ServerHandle:
    """A server running on a background thread, for in-process use.

    ``port=0`` binds an ephemeral port; read the resolved address from
    :attr:`address` after :meth:`start` returns.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.server = AttackServer(config)
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._tcp = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    def start(self) -> "ServerHandle":
        self._thread = threading.Thread(
            target=self._run, name="serve-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("server failed to start within 10s")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def boot():
            self.server.start()
            self._tcp = await asyncio.start_server(
                lambda r, w: _handle_connection(self.server, r, w),
                host=self.config.host,
                port=self.config.port,
            )
            self.address = self._tcp.sockets[0].getsockname()[:2]
            self._ready.set()

        try:
            self._loop.run_until_complete(boot())
            self._loop.run_forever()
        finally:
            self._ready.set()  # unblock start() even on boot failure
            if self._tcp is not None:
                self._tcp.close()
                self._loop.run_until_complete(self._tcp.wait_closed())
            self._loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.server.stop()

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve one-pixel attacks over HTTP with micro-batched queries",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8871)
    parser.add_argument(
        "--model",
        default="toy",
        choices=["toy"] + sorted(ARCHITECTURES),
        help="model to serve (default: toy SmoothLinearClassifier)",
    )
    parser.add_argument("--height", type=int, default=8)
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--classes", type=int, default=4, dest="num_classes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batch-size", type=int, default=32, dest="max_batch_size")
    parser.add_argument(
        "--max-wait",
        type=float,
        default=0.002,
        help="seconds the oldest pending query may wait before a flush",
    )
    parser.add_argument(
        "--cache", type=_nonnegative_int, default=4096, dest="cache_size",
        help="query-cache entries (0 disables caching)",
    )
    parser.add_argument(
        "--freeze",
        action="store_true",
        help="serve network models on the inference fast path (folded "
        "batch norms, reused buffers); no-op for the toy model",
    )
    parser.add_argument(
        "--dtype",
        choices=["float32", "float64"],
        default=None,
        help="cast network models for inference (float32 is ~2x faster "
        "on CPU; scores differ from float64 in the last ulps)",
    )
    parser.add_argument(
        "--latency",
        type=float,
        default=0.0,
        help="simulated per-image model seconds (benchmark knob: makes "
        "the toy model behave like a compute-bound replica)",
    )
    parser.add_argument("--max-sessions", type=int, default=64)
    parser.add_argument("--workers", type=int, default=16, dest="max_workers")
    parser.add_argument("--rate", type=float, default=50.0)
    parser.add_argument("--burst", type=float, default=20.0)
    parser.add_argument("--log", default=None, dest="log_path",
                        help="JSONL telemetry file")
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="durable checkpoint directory: SIGTERM/SIGINT drain in-flight "
        "batches and persist open sessions here instead of dropping them",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore sessions persisted in --checkpoint by a previous "
        "graceful shutdown and finish them (paper-faithful query counts)",
    )
    parser.add_argument(
        "--cluster",
        type=int,
        default=0,
        metavar="N",
        help="serve through a sharded tier of N worker replicas instead "
        "of a single process (same flags; see `repro cluster --help`)",
    )
    parser.add_argument(
        "--scalar-steps",
        action="store_true",
        help="drive attacks with the legacy one-query-at-a-time stepping "
        "protocol instead of batch-native QueryBatch stepping "
        "(bit-identical results; differential escape hatch)",
    )
    parser.add_argument(
        "--shared-cache",
        nargs="?",
        const="auto",
        default=None,
        metavar="HOST:PORT",
        help="consult a shared L2 query cache on L1 miss and write "
        "scored entries through (bit-identical results either way). "
        "Single-process serving needs the explicit HOST:PORT of a "
        "running repro.cluster.cacheservice; with --cluster the bare "
        "flag spawns and supervises the service automatically",
    )
    parser.add_argument(
        "--shared-cache-size",
        type=int,
        default=65536,
        dest="shared_cache_size",
        help="entries in the shared L2 bounded LRU (cluster mode)",
    )
    parser.add_argument(
        "--default-deadline",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline applied to submissions that omit "
        "deadline_seconds; sessions past it park as 'expired' at their "
        "next query boundary with exact query counts",
    )
    parser.add_argument(
        "--max-deadline",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="hard cap on requested deadline_seconds (larger asks get 400)",
    )
    parser.add_argument(
        "--session-ttl",
        type=_positive_float,
        default=None,
        dest="session_ttl",
        metavar="SECONDS",
        help="reap finished sessions unpolled this long (polls then get "
        "410 Gone); default keeps them until history eviction",
    )
    parser.add_argument(
        "--idle-ttl",
        type=_positive_float,
        default=None,
        dest="idle_ttl",
        metavar="SECONDS",
        help="cancel live sessions no client has polled for this long "
        "(abandoned submissions stop burning model time)",
    )
    parser.add_argument(
        "--reap-interval",
        type=_positive_float,
        default=1.0,
        dest="reap_interval",
        metavar="SECONDS",
        help="cadence of the TTL reaper sweep (default 1s)",
    )
    parser.add_argument(
        "--shed-queue-depth",
        type=_positive_int,
        default=None,
        dest="shed_queue_depth",
        metavar="N",
        help="shed new submissions with 503 + Retry-After while the "
        "broker queue holds >= N pending queries",
    )
    parser.add_argument(
        "--shed-sessions",
        type=_positive_int,
        default=None,
        dest="shed_sessions",
        metavar="N",
        help="shed new submissions with 503 + Retry-After while >= N "
        "sessions are live (soft watermark below --max-sessions)",
    )
    parser.add_argument(
        "--shed-retry-after",
        type=_positive_float,
        default=1.0,
        dest="shed_retry_after",
        metavar="SECONDS",
        help="Retry-After value sent with shed (503) responses",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    options = vars(args)
    cluster_workers = options.pop("cluster")
    if cluster_workers:
        from repro.cluster.config import ClusterConfig
        from repro.cluster.router import run_cluster

        return run_cluster(
            ClusterConfig(
                workers=cluster_workers,
                host=options["host"],
                port=options["port"],
                model=options["model"],
                height=options["height"],
                width=options["width"],
                num_classes=options["num_classes"],
                seed=options["seed"],
                freeze=options["freeze"],
                dtype=options["dtype"],
                latency=options["latency"],
                max_batch_size=options["max_batch_size"],
                max_wait=options["max_wait"],
                cache_size=options["cache_size"],
                max_sessions=options["max_sessions"],
                max_threads=options["max_workers"],
                rate=options["rate"],
                burst=options["burst"],
                checkpoint=options["checkpoint"],
                resume=options["resume"],
                log_path=options["log_path"],
                scalar_steps=options["scalar_steps"],
                shared_cache=options["shared_cache"] is not None,
                shared_cache_size=options["shared_cache_size"],
                default_deadline=options["default_deadline"],
                max_deadline=options["max_deadline"],
                session_ttl=options["session_ttl"],
                idle_ttl=options["idle_ttl"],
                reap_interval=options["reap_interval"],
                shed_queue_depth=options["shed_queue_depth"],
                shed_sessions=options["shed_sessions"],
                shed_retry_after=options["shed_retry_after"],
            )
        )
    if options["shared_cache"] == "auto":
        build_parser().error(
            "--shared-cache needs an explicit HOST:PORT outside --cluster "
            "(single-process serving does not spawn the cache service)"
        )
    config = ServeConfig(**options)
    server = AttackServer(config)
    print(
        f"repro-serve: {config.model} on http://{config.host}:{config.port} "
        f"(batch<={config.max_batch_size}, wait<={config.max_wait * 1000:.1f}ms)"
    )
    try:
        asyncio.run(serve(server))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
