"""Thread-safe serving metrics.

The serving layer's observable state -- how well micro-batching is
coalescing queries, how deep the broker's queue runs, how often the
cache answers -- lives here as plain counters and histograms, snapshotted
into JSON-safe dicts for the ``/metrics`` endpoint and for
:class:`~repro.runtime.events.RunLog` summaries.
"""

from __future__ import annotations

import threading
from typing import Dict, Sequence, Tuple


class Histogram:
    """A fixed-bucket histogram of non-negative observations.

    Buckets are cumulative-free ("how many observations landed in this
    range"), with an overflow bucket above the last bound.  The default
    bounds are powers of two, matching the batch sizes a doubling
    coalescing policy produces.
    """

    DEFAULT_BOUNDS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

    def __init__(self, bounds: Sequence[int] = DEFAULT_BOUNDS):
        bounds = tuple(sorted(bounds))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self._counts[position] += 1
                return
        self._counts[-1] += 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def snapshot(self) -> Dict:
        buckets = {}
        lower = 0
        for position, bound in enumerate(self.bounds):
            label = f"{lower + 1}-{bound}" if bound != lower + 1 else f"{bound}"
            buckets[label] = self._counts[position]
            lower = bound
        buckets[f">{self.bounds[-1]}"] = self._counts[-1]
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
            "buckets": buckets,
        }


class BrokerMetrics:
    """Counters describing one broker's lifetime.

    ``batch_sizes`` observes the number of queries answered per flush
    (what micro-batching achieved); ``model_batch_sizes`` observes the
    number of *unique, uncached* images actually sent to the model per
    flush (what the model paid).  The gap between the two is the win
    from caching plus intra-batch deduplication.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.batch_sizes = Histogram()
        self.model_batch_sizes = Histogram()
        self.submitted = 0  # queries entering the broker
        self.flushes = 0  # batched evaluations performed
        self.coalesced_duplicates = 0  # intra-batch repeats served once
        self.rejected = 0  # submits refused (broker stopped)
        self.l2_hits = 0  # misses answered by the shared cache tier
        self.single_flight_waits = 0  # misses joined to another call's flight

    def record_submit(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_flush(
        self,
        batch: int,
        model_batch: int,
        duplicates: int,
        l2_hits: int = 0,
        single_flight_waits: int = 0,
    ) -> None:
        with self._lock:
            self.flushes += 1
            self.batch_sizes.observe(batch)
            self.model_batch_sizes.observe(model_batch)
            self.coalesced_duplicates += duplicates
            self.l2_hits += l2_hits
            self.single_flight_waits += single_flight_waits

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "submitted": self.submitted,
                "flushes": self.flushes,
                "coalesced_duplicates": self.coalesced_duplicates,
                "rejected": self.rejected,
                "l2_hits": self.l2_hits,
                "single_flight_waits": self.single_flight_waits,
                "batch_sizes": self.batch_sizes.snapshot(),
                "model_batch_sizes": self.model_batch_sizes.snapshot(),
            }
