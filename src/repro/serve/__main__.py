"""``python -m repro.serve`` starts the attack service."""

from repro.serve.server import main

if __name__ == "__main__":
    raise SystemExit(main())
