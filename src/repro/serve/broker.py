"""The micro-batching query broker.

Attack sessions are pure query streams: each one repeatedly asks "score
this image" and blocks until the answer arrives.  Served naively, every
such query is a one-image forward pass -- the dominant cost at scale,
since :meth:`~repro.classifier.blackbox.NetworkClassifier.batch` prices
a whole batch close to a single image.  The broker closes that gap by
coalescing pending queries from concurrent sessions into few, large
batched evaluations.

Batch formation follows the classic micro-batching policy: a flush
happens as soon as ``max_batch_size`` queries are pending, or when the
oldest pending query has waited ``max_wait`` seconds, whichever comes
first.  ``max_wait`` bounds the latency a lone session can be charged
for the crowd's benefit; ``max_batch_size`` bounds the model's memory.

Two access modes share one evaluation core:

- :meth:`evaluate` -- synchronous; scores a ready-made list of images in
  one pass.  Used by the cooperative session scheduler and by tests: no
  threads, fully deterministic.
- :meth:`submit` -- thread-safe blocking call used by concurrently
  driven sessions; a background flusher thread applies the batch policy.

Both modes run every miss through a shared
:class:`~repro.runtime.cache.QueryCache` sitting *in front of* the model
(inside each session's counting boundary -- sessions count their own
submissions, so a cache hit still costs the attacker a query and
reported counts stay paper-faithful), and deduplicate identical images
within a batch so the model scores each distinct image once.  Across
concurrent calls, a single-flight table extends that guarantee: a miss
another call is already scoring is *joined* (the second caller waits for
the first's result) instead of re-scored, so each distinct image costs
at most one forward pass no matter how calls interleave.

When the cache is a :class:`~repro.runtime.cache.TieredQueryCache`, the
broker also consults the shared L2 tier -- one batched round trip per
evaluation covering every owned miss -- and writes freshly scored
entries through after the forward pass.  L2 hits are promoted into L1
and resolved exactly like local hits (still counted queries); an
unreachable L2 silently degrades to the private-cache behaviour.

The model itself is treated as one exclusive resource (a single lock
serializes forward passes): classifiers built on :mod:`repro.nn` are not
thread-safe, and a real deployment's accelerator is serialized anyway.
Batching, not concurrent model entry, is where throughput comes from.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.classifier.blackbox import batch_scores
from repro.runtime.cache import QueryCache, image_digest
from repro.runtime.events import RunLog, ensure_log
from repro.serve.metrics import BrokerMetrics

Classifier = Callable[[np.ndarray], np.ndarray]

#: Idle wakeup period of the flusher thread (seconds): the upper bound on
#: how stale a ``stop()`` request can go unnoticed, not a batching knob.
_IDLE_TICK = 0.05


class BrokerStopped(RuntimeError):
    """Raised by :meth:`MicroBatchBroker.submit` after :meth:`stop`."""


@dataclass(frozen=True)
class BatchPolicy:
    """When the broker closes a batch.

    ``max_batch_size`` flushes on size; ``max_wait`` (seconds) flushes on
    the age of the oldest pending query.  ``max_batch_size=1`` degrades
    the broker to per-query dispatch -- the baseline the serving
    benchmark measures against.
    """

    max_batch_size: int = 32
    max_wait: float = 0.002

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be non-negative")


class _PendingQuery:
    """One in-flight ``submit`` awaiting its batch."""

    __slots__ = ("image", "enqueued_at", "ready", "scores", "error")

    def __init__(self, image: np.ndarray):
        self.image = image
        self.enqueued_at = time.monotonic()
        self.ready = threading.Event()
        self.scores: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


class _InFlight:
    """A miss one :meth:`MicroBatchBroker.evaluate` call is resolving.

    Other concurrent calls that miss on the same key *join* this flight
    and wait on ``ready`` instead of scoring the image again.  The owner
    always resolves the flight -- with scores on success, with the
    evaluation's exception on failure -- so joiners can never hang.
    """

    __slots__ = ("ready", "scores", "error")

    def __init__(self):
        self.ready = threading.Event()
        self.scores: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


class MicroBatchBroker:
    """Coalesce concurrent classifier queries into batched evaluations.

    Parameters
    ----------
    classifier:
        The model to serve: any ``(H, W, 3) -> (C,)`` callable.  A native
        ``batch`` method is used when present; otherwise the broker falls
        back to per-image calls under the model lock (still amortizing
        cache lookups and lock traffic, and guaranteeing bit-identical
        scores to sequential queries).
    policy:
        The :class:`BatchPolicy`; defaults to batches of 32 with a 2 ms
        wait bound.
    cache:
        A shared :class:`~repro.runtime.cache.QueryCache`; pass ``None``
        to disable caching, or an integer-sized cache built by the
        caller to share across brokers.  A
        :class:`~repro.runtime.cache.TieredQueryCache` additionally
        enables the shared L2 tier (batched consult on miss,
        write-through after scoring).
    run_log:
        Optional telemetry sink; every flush emits a ``broker_flush``
        event and :meth:`stop` emits a ``broker_summary``.
    """

    def __init__(
        self,
        classifier: Classifier,
        policy: Optional[BatchPolicy] = None,
        cache: Optional[QueryCache] = None,
        run_log: Optional[RunLog] = None,
    ):
        self.classifier = classifier
        self.policy = policy if policy is not None else BatchPolicy()
        self.cache = cache
        self.run_log = ensure_log(run_log)
        self.metrics = BrokerMetrics()
        #: Optional ``observer(image, scores)`` trace hook, called once
        #: per *logical* query (cache hits and intra-batch duplicates
        #: included) in input order at flush time.  Used by the testkit's
        #: differential oracles to localize the first diverging query of
        #: a served run; called under no broker lock, so observers must
        #: be fast and must not re-enter the broker.
        self.observer = None
        # The QueryCache locks each get/put internally; this lock covers
        # the broker's *compound* lookup-and-dedup phase and the
        # single-flight table.  The lock alone is not enough to prevent
        # double-scoring: the miss decision and the cache.put are
        # separate critical sections with the (unlocked) model call in
        # between, so two concurrent evaluate() calls could both miss on
        # the same key.  The _in_flight table closes that window -- the
        # first call to miss on a key claims it under this lock; later
        # callers find the claim and wait for its result instead of
        # scoring the image again.
        self._cache_lock = threading.Lock()
        self._in_flight: Dict[bytes, _InFlight] = {}
        # A TieredQueryCache exposes batched remote-tier operations; a
        # plain QueryCache (or None) keeps the broker purely local.
        self._l2_capable = cache is not None and hasattr(cache, "fetch_remote")
        # Forward passes are serialized: repro.nn models are not
        # thread-safe, and the frozen fast path reuses per-layer im2col
        # workspaces that assume one forward pass in flight at a time.
        self._model_lock = threading.Lock()
        self._cond = threading.Condition(threading.Lock())
        self._pending: List[_PendingQuery] = []
        #: Deepest the pending queue has ever been; the load signal
        #: overload shedding watches (serve --shed-queue-depth).
        self._queue_high_water = 0
        self._flusher: Optional[threading.Thread] = None
        self._running = False

    # ------------------------------------------------------------------
    # synchronous core
    # ------------------------------------------------------------------

    def evaluate(self, images: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Score ``images`` in one coalesced evaluation.

        Cache hits are served from memory, identical images are scored
        once, and the remaining unique misses go to the model as a
        single batch.  Returns one float64 score vector per input, in
        input order.

        The evaluation runs in phases so no network or model work ever
        happens under ``_cache_lock``:

        1. **Claim** (under the lock): probe L1 per position, dedup
           misses within the call, and for each distinct miss either
           *claim* it in the single-flight table or *join* a flight
           another call already owns.
        2. **L2 consult** (lock-free): one batched remote lookup
           covering every owned miss; hits are promoted into L1.
        3. **Model** (model lock only): one forward batch for the
           still-unresolved owned misses, then L1 insert and one
           batched L2 write-through.
        4. **Settle and wait**: resolve every owned flight (scores or
           error -- always, so joiners never hang), then block on the
           joined flights.  Owned work completes before any waiting, so
           two calls joining each other's keys cannot deadlock.
        """
        images = list(images)
        if not images:
            return []
        keys = [image_digest(image) for image in images]
        scores: List[Optional[np.ndarray]] = [None] * len(images)
        owned: Dict[bytes, _InFlight] = {}
        owned_images: Dict[bytes, np.ndarray] = {}
        joined: Dict[bytes, _InFlight] = {}
        miss_occurrences = 0
        with self._cache_lock:
            for position, key in enumerate(keys):
                if self.cache is not None:
                    hit = self.cache.get(key)
                    if hit is not None:
                        scores[position] = np.asarray(hit, dtype=np.float64)
                        continue
                miss_occurrences += 1
                if key in owned or key in joined:
                    continue
                flight = self._in_flight.get(key)
                if flight is not None:
                    joined[key] = flight
                    continue
                flight = _InFlight()
                self._in_flight[key] = flight
                owned[key] = flight
                owned_images[key] = images[position]
        duplicates = miss_occurrences - len(owned) - len(joined)

        l2_found: Dict[bytes, np.ndarray] = {}
        if owned and self._l2_capable:
            l2_found = self.cache.fetch_remote(list(owned))

        to_score = [key for key in owned if key not in l2_found]
        fresh_by_key: Dict[bytes, np.ndarray] = {}
        error: Optional[BaseException] = None
        if to_score:
            try:
                with self._model_lock:
                    fresh = np.asarray(
                        batch_scores(
                            self.classifier,
                            [owned_images[key] for key in to_score],
                        ),
                        dtype=np.float64,
                    )
            except BaseException as exc:
                error = exc
            else:
                with self._cache_lock:
                    if self.cache is not None:
                        for key, row in zip(to_score, fresh):
                            self.cache.put(key, row)
                fresh_by_key = dict(zip(to_score, fresh))
                if self._l2_capable:
                    self.cache.store_remote(fresh_by_key)

        settled: Dict[bytes, np.ndarray] = {}
        with self._cache_lock:
            for key in owned:
                self._in_flight.pop(key, None)
        for key, flight in owned.items():
            if key in l2_found:
                flight.scores = np.asarray(l2_found[key], dtype=np.float64)
            elif key in fresh_by_key:
                flight.scores = np.asarray(fresh_by_key[key], dtype=np.float64)
            else:
                flight.error = (
                    error
                    if error is not None
                    else RuntimeError("single-flight miss left unresolved")
                )
            if flight.scores is not None:
                settled[key] = flight.scores
            flight.ready.set()
        if error is not None:
            raise error

        for key, flight in joined.items():
            flight.ready.wait()
            if flight.error is not None:
                raise flight.error
            settled[key] = flight.scores

        for position, key in enumerate(keys):
            if scores[position] is None:
                scores[position] = np.array(settled[key], copy=True)
        if self.observer is not None:
            for image, row in zip(images, scores):
                self.observer(image, row)
        self.metrics.record_flush(
            batch=len(images),
            model_batch=len(to_score),
            duplicates=duplicates,
            l2_hits=len(l2_found),
            single_flight_waits=len(joined),
        )
        self.run_log.emit(
            "broker_flush",
            batch=len(images),
            model_batch=len(to_score),
            duplicates=duplicates,
            cached=len(images) - miss_occurrences,
            l2_hits=len(l2_found),
            waited=len(joined),
        )
        return scores

    # ------------------------------------------------------------------
    # threaded service
    # ------------------------------------------------------------------

    def start(self) -> "MicroBatchBroker":
        """Start the background flusher; idempotent."""
        with self._cond:
            if self._running:
                return self
            self._running = True
        self._flusher = threading.Thread(
            target=self._flush_loop, name="broker-flusher", daemon=True
        )
        self._flusher.start()
        return self

    def stop(self) -> None:
        """Stop the flusher and fail any still-pending submits."""
        with self._cond:
            if not self._running:
                return
            self._running = False
            leftovers = list(self._pending)
            self._pending.clear()
            self._cond.notify_all()
        for query in leftovers:
            query.error = BrokerStopped("broker stopped with queries pending")
            query.ready.set()
        if self._flusher is not None:
            self._flusher.join(timeout=5.0)
            self._flusher = None
        self.run_log.emit("broker_summary", **self.stats())

    def __enter__(self) -> "MicroBatchBroker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def submit(self, image: np.ndarray) -> np.ndarray:
        """Score one image, blocking until its batch is evaluated.

        Thread-safe; meant to be called from session-driving threads.
        Cache hits are resolved at flush time through the same
        :meth:`evaluate` core, so hit/miss statistics count each logical
        query exactly once.
        """
        with self._cond:
            if not self._running:
                self.metrics.record_rejected()
                raise BrokerStopped("submit on a broker that is not running")
            query = _PendingQuery(image)
            self._pending.append(query)
            if len(self._pending) > self._queue_high_water:
                self._queue_high_water = len(self._pending)
            # wake the flusher when the batch fills, and on the first
            # query of a batch so its max_wait timer starts immediately
            # (instead of whenever the idle tick next expires)
            if (
                len(self._pending) == 1
                or len(self._pending) >= self.policy.max_batch_size
            ):
                self._cond.notify_all()
        self.metrics.record_submit()
        query.ready.wait()
        if query.error is not None:
            raise query.error
        return query.scores

    def submit_many(self, images: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Score one session's ready-made query batch in a single flush.

        The batch-native stepping path: a yielded
        :class:`~repro.core.stepping.QueryBatch` arrives here whole, so
        it bypasses the micro-batching queue (the caller already built a
        model-sized batch) and goes straight through :meth:`evaluate`,
        which still gives it the shared cache, intra-batch dedup, and
        flush accounting.  Each member is recorded as one submitted
        logical query.  Thread-safe; serialized against concurrent
        flushes by the model lock inside :meth:`evaluate`.
        """
        images = list(images)
        if not images:
            return []
        with self._cond:
            if not self._running:
                self.metrics.record_rejected()
                raise BrokerStopped("submit_many on a broker that is not running")
        for _ in images:
            self.metrics.record_submit()
        return self.evaluate(images)

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._pending)

    def _flush_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._flush(batch)

    def _next_batch(self) -> Optional[List[_PendingQuery]]:
        """Block until the policy closes a batch; ``None`` on shutdown."""
        with self._cond:
            while True:
                if not self._running:
                    return None
                if not self._pending:
                    self._cond.wait(_IDLE_TICK)
                    continue
                if len(self._pending) >= self.policy.max_batch_size:
                    break
                age = time.monotonic() - self._pending[0].enqueued_at
                remaining = self.policy.max_wait - age
                if remaining <= 0:
                    break
                self._cond.wait(min(remaining, _IDLE_TICK))
            size = min(len(self._pending), self.policy.max_batch_size)
            batch = self._pending[:size]
            del self._pending[:size]
            return batch

    def _flush(self, batch: List[_PendingQuery]) -> None:
        try:
            scores = self.evaluate([query.image for query in batch])
        except BaseException as exc:  # propagate to every waiter
            for query in batch:
                query.error = exc
                query.ready.set()
            return
        for query, row in zip(batch, scores):
            query.scores = row
            query.ready.set()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def stats(self) -> Dict:
        """JSON-safe snapshot for ``/metrics`` and run summaries."""
        snapshot = self.metrics.snapshot()
        snapshot["queue_depth"] = self.queue_depth
        with self._cond:
            snapshot["queue_high_water"] = self._queue_high_water
        snapshot["policy"] = {
            "max_batch_size": self.policy.max_batch_size,
            "max_wait": self.policy.max_wait,
        }
        snapshot["cache"] = self.cache.stats() if self.cache is not None else None
        return snapshot
