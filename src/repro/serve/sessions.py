"""Attack sessions: steppable attacks with lifecycle and accounting.

A session wraps one ``(attack, image, true_class)`` job around the
generator-based :meth:`~repro.attacks.base.OnePixelAttack.steps`
protocol: instead of calling a classifier, the attack *yields* queries,
and whoever drives the session decides how those queries are executed.
That inversion is what lets the :class:`SessionManager` interleave many
sessions over one :class:`~repro.serve.broker.MicroBatchBroker` so their
queries coalesce into batched forward passes.

Query accounting is per-session and paper-faithful: a session counts
exactly the queries its attack marks ``counted`` (the sketch's clean-
image probe is not an attack submission) -- at pose time for scalar
queries, mirroring :class:`~repro.classifier.blackbox.
CountingClassifier`, and at *consumption* time for members of a
speculative :class:`~repro.core.stepping.QueryBatch` (the batch's
observer hook fires per member exactly when the attack charges it, so
speculative members the attack never uses are never counted).  The
final ``AttackResult.queries`` from the attack's own internal
accounting must agree -- a pinned invariant.

Two drive strategies:

- :meth:`SessionManager.run_cooperative` -- lock-step rounds: every
  active session contributes its pending query, the whole round is
  evaluated as one batch, every session advances.  Single-threaded and
  deterministic; batch size equals the number of live sessions.
- :meth:`SessionManager.start` -- one driving thread per session,
  queries funneled through ``broker.submit`` where the batch policy
  coalesces them.  This is what the HTTP server uses.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.base import AttackResult, OnePixelAttack
from repro.classifier.blackbox import QueryBudgetExceeded
from repro.core.stepping import Query, QueryBatch, StepRequest
from repro.runtime.events import RunLog, ensure_log
from repro.serve.broker import MicroBatchBroker

#: Session lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
#: Parked at a query boundary by a graceful drain; persistable and
#: restartable (see :meth:`SessionManager.drain`).
SUSPENDED = "suspended"
#: Terminated at a query boundary by ``DELETE /attacks/<id>``.
CANCELLED = "cancelled"
#: Terminated at a query boundary by its ``deadline_seconds`` budget.
EXPIRED = "expired"

#: States a session can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED, EXPIRED)

#: Finished sessions kept for polling before the manager forgets them.
DEFAULT_HISTORY = 1024

#: Reaped session ids remembered for 410 Gone responses (bounded so a
#: hostile client cycling ids cannot grow the tombstone set forever).
DEFAULT_TOMBSTONES = 4096


class AttackSession:
    """One attack in flight, driven query by query.

    Not thread-safe on its own: a session is only ever advanced by a
    single driver (one executor thread, or the cooperative loop).
    Reads of ``state``/``queries`` from other threads (the ``/metrics``
    endpoint) see a consistent-enough snapshot since both are plain
    attribute writes.
    """

    def __init__(
        self,
        session_id: str,
        attack: OnePixelAttack,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
        client: Optional[str] = None,
        observer=None,
        spec: Optional[Dict] = None,
        batch_size: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ):
        self.session_id = session_id
        self.attack = attack
        self.image = image
        self.true_class = true_class
        self.budget = budget
        self.target_class = target_class
        self.client = client
        #: Speculation window for batch-native stepping: ``None`` leaves
        #: the attack's own default in place, ``0`` forces the scalar
        #: protocol, ``N > 0`` allows QueryBatch yields of up to N.
        self.batch_size = batch_size
        #: JSON-safe request payload this session was built from; what a
        #: graceful drain persists so ``--resume`` can rebuild the
        #: session.  ``None`` for sessions created programmatically
        #: (those cannot be persisted).
        self.spec = spec
        #: Optional ``observer(query, scores)`` trace hook, called for
        #: every answered query before the attack resumes -- the serving
        #: side of the hook :func:`~repro.core.stepping.drive_steps`
        #: exposes for direct runs (see :mod:`repro.testkit.trace`).
        self.observer = observer
        self.state = QUEUED
        self.queries = 0  # counted submissions posed so far
        self.result: Optional[AttackResult] = None
        self.error: Optional[str] = None
        self.created_at = time.time()
        self.finished_at: Optional[float] = None
        self.pending: Optional[StepRequest] = None
        self._steps = None
        #: Wall-clock budget for the whole attack; enforced by the
        #: driver at query boundaries.  Armed into :attr:`deadline_at`
        #: (monotonic) when driving starts, so queue wait is free.
        self.deadline_seconds = deadline_seconds
        self.deadline_at: Optional[float] = None
        #: Set by ``DELETE /attacks/<id>`` (any thread); honored by the
        #: driver at the next query boundary.
        self.cancel_requested = False
        #: Last client poll (wall clock); what the TTL reaper ages.
        self.last_polled_at = self.created_at

    def touch(self) -> None:
        """Record a client poll, deferring the TTL reaper."""
        self.last_polled_at = time.time()

    def request_cancel(self) -> bool:
        """Flag the session for cancellation at its next query boundary.

        Safe from any thread (plain attribute write).  Returns ``True``
        when the session was still live -- the driver will park it --
        and ``False`` when it had already reached a terminal state.
        """
        if self.state in TERMINAL_STATES:
            return False
        self.cancel_requested = True
        return True

    def lifecycle_verdict(self, now: Optional[float] = None) -> Optional[str]:
        """The terminal state a boundary check should park into, if any.

        Cancellation wins over expiry when both apply (the client asked
        first).  ``now`` is monotonic time, injectable for tests.
        """
        if self.state not in (QUEUED, RUNNING):
            return None
        if self.cancel_requested:
            return CANCELLED
        if self.deadline_at is not None:
            if (time.monotonic() if now is None else now) >= self.deadline_at:
                return EXPIRED
        return None

    def start(self) -> Optional[StepRequest]:
        """Prime the attack generator; returns the first request (if any)."""
        if self.state != QUEUED:
            raise RuntimeError(f"session {self.session_id} already {self.state}")
        self.state = RUNNING
        if self.deadline_seconds is not None:
            self.deadline_at = time.monotonic() + self.deadline_seconds
        kwargs = {}
        if self.batch_size is not None:
            kwargs["batch_size"] = self.batch_size
        self._steps = self.attack.steps(
            self.image,
            self.true_class,
            budget=self.budget,
            target_class=self.target_class,
            **kwargs,
        )
        return self._resume(lambda: next(self._steps))

    def advance(self, scores: np.ndarray) -> Optional[StepRequest]:
        """Answer the pending request; returns the next one (if any).

        For a pending :class:`QueryBatch` the answers are speculative:
        counting and the trace hook are deferred to the batch's observer,
        which the attack fires per member exactly as it consumes that
        member's answer -- so the observed stream and the session's
        query count stay in scalar order no matter how the batch was
        posed.
        """
        if self.state != RUNNING or self.pending is None:
            raise RuntimeError(f"session {self.session_id} has no pending query")
        if isinstance(self.pending, QueryBatch):
            self.pending.observer = self._note_batch_member
        elif self.observer is not None:
            self.observer(self.pending, scores)
        return self._resume(lambda: self._steps.send(scores))

    def _note_batch_member(self, query: Query, scores: np.ndarray) -> None:
        """Per-member consumption hook for batched stepping."""
        if query.counted:
            self.queries += 1
        if self.observer is not None:
            self.observer(query, scores)

    def _resume(self, step) -> Optional[StepRequest]:
        try:
            query = step()
        except StopIteration as stop:
            self.pending = None
            self._finish(stop.value)
            return None
        except BaseException as exc:
            self.pending = None
            self.fail(exc)
            raise
        self.pending = query
        # Scalar queries are counted at pose time (the classic
        # CountingClassifier boundary); batch members are counted at
        # consumption via _note_batch_member.
        if isinstance(query, Query) and query.counted:
            self.queries += 1
        return query

    def _finish(self, result: AttackResult) -> None:
        self.result = result
        self.state = DONE
        self.finished_at = time.time()

    def fail(self, exc: BaseException) -> None:
        """Record an abnormal end (driver error, broker shutdown)."""
        if self.state in (DONE, FAILED):
            return
        self.state = FAILED
        self.error = f"{type(exc).__name__}: {exc}"
        self.finished_at = time.time()
        if self._steps is not None:
            self._steps.close()

    def suspend(self) -> None:
        """Park the session at its current query boundary (drain path).

        The live generator cannot survive the process, so it is closed;
        what persists is the session's original request (:attr:`spec`).
        A restored session re-runs its attack from the start against the
        same deterministic model, so it re-derives the same query stream
        and finishes with exactly the query count an uninterrupted run
        would have charged -- :attr:`queries` here is the progress marker
        at suspension, not a resumption offset.
        """
        if self.state not in (QUEUED, RUNNING):
            return
        self.state = SUSPENDED
        self.pending = None
        if self._steps is not None:
            self._steps.close()
            self._steps = None

    def park(self, state: str) -> None:
        """Terminate at the current query boundary into ``state``.

        The generator is unwound by throwing
        :class:`~repro.classifier.blackbox.QueryBudgetExceeded` into its
        suspended yield -- the *same* exception, at the same program
        point, that a :class:`~repro.core.stepping.StepCounter` raises
        when a budget runs dry.  Every native attack generator converts
        that unwind into its degraded result with ``queries`` taken from
        its own internal counter, so a session cancelled or expired
        after ``k`` charged queries reports exactly ``k`` and carries a
        result bit-identical to a budget-``k`` scalar run that never
        succeeded (the fidelity invariant; differentially verified by
        :mod:`repro.testkit.lifecycle`).  A generator that does not
        catch the unwind (the threaded fallback) simply terminates with
        no result; :attr:`queries` still holds the boundary count.
        """
        if self.state not in (QUEUED, RUNNING):
            return
        self.pending = None
        result = None
        if self._steps is not None:
            try:
                self._steps.throw(QueryBudgetExceeded(self.queries))
            except StopIteration as stop:
                result = stop.value
            except BaseException:
                result = None  # generator did not convert the unwind
            finally:
                self._steps.close()
                self._steps = None
        if isinstance(result, AttackResult):
            self.result = result
        self.state = state
        self.finished_at = time.time()

    def close(self) -> None:
        """Abandon the session, releasing generator resources."""
        if self.state == RUNNING:
            self.fail(RuntimeError("session closed"))

    def to_dict(self) -> Dict:
        """JSON-safe status view for the HTTP API."""
        payload: Dict = {
            "id": self.session_id,
            "attack": self.attack.name,
            "state": self.state,
            "queries": self.queries,
            "budget": self.budget,
            "created_at": self.created_at,
        }
        if self.deadline_seconds is not None:
            payload["deadline_seconds"] = self.deadline_seconds
        if self.cancel_requested and self.state not in TERMINAL_STATES:
            payload["cancel_requested"] = True
        if self.finished_at is not None:
            payload["finished_at"] = self.finished_at
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            result = self.result
            payload["result"] = {
                "success": result.success,
                "queries": result.queries,
                "location": list(result.location) if result.location else None,
                "perturbation": (
                    None
                    if result.perturbation is None
                    else np.asarray(result.perturbation, dtype=np.float64).tolist()
                ),
                "adversarial_class": result.adversarial_class,
                "error": result.error,
            }
        return payload


class SessionManager:
    """Create, drive, and track attack sessions over one broker."""

    def __init__(
        self,
        broker: MicroBatchBroker,
        max_workers: int = 16,
        run_log: Optional[RunLog] = None,
        history: int = DEFAULT_HISTORY,
        step_batch: Optional[int] = None,
        session_ttl: Optional[float] = None,
        idle_ttl: Optional[float] = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if history < 0:
            raise ValueError("history must be non-negative")
        if session_ttl is not None and session_ttl <= 0:
            raise ValueError("session_ttl must be positive (or None)")
        if idle_ttl is not None and idle_ttl <= 0:
            raise ValueError("idle_ttl must be positive (or None)")
        self.broker = broker
        #: Default speculation window handed to new sessions: ``None``
        #: keeps the attacks' own (scalar) default, ``0`` pins the
        #: legacy scalar protocol (``--scalar-steps``), ``N > 0`` turns
        #: on batch-native stepping.
        self.step_batch = step_batch
        self.run_log = ensure_log(run_log)
        self._lock = threading.Lock()
        self._sessions: "Dict[str, AttackSession]" = {}
        self._finished_order: List[str] = []
        self._history = history
        self._next_id = 1
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="session"
        )
        #: TTL reaper policy: ``session_ttl`` ages terminal sessions out
        #: of the poll table (-> 410 Gone), ``idle_ttl`` cancels live
        #: sessions no client has polled.  ``None`` disables each sweep.
        self.session_ttl = session_ttl
        self.idle_ttl = idle_ttl
        self._reaped_ids: List[str] = []  # bounded 410 tombstones
        self._reaper: Optional[threading.Thread] = None
        self._reaper_halt = threading.Event()
        # lifecycle counters for /metrics
        self.cancelled = 0
        self.expired = 0
        self.reaped = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        attack: OnePixelAttack,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
        client: Optional[str] = None,
        observer=None,
        spec: Optional[Dict] = None,
        session_id: Optional[str] = None,
        batch_size: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> AttackSession:
        """Register a new session.

        ``session_id`` lets checkpoint restoration re-create a persisted
        session under its original id (so clients polling across a server
        restart keep their handle); the id counter is advanced past any
        restored numeric id so fresh sessions never collide.

        ``batch_size`` overrides the manager-wide :attr:`step_batch`
        speculation window for this session (``None`` inherits it).
        """
        if batch_size is None:
            batch_size = self.step_batch
        with self._lock:
            if session_id is None:
                session_id = f"s{self._next_id}"
                self._next_id += 1
            else:
                if session_id in self._sessions:
                    raise ValueError(f"session id {session_id} already exists")
                if session_id.startswith("s") and session_id[1:].isdigit():
                    self._next_id = max(self._next_id, int(session_id[1:]) + 1)
            session = AttackSession(
                session_id,
                attack,
                image,
                true_class,
                budget=budget,
                target_class=target_class,
                client=client,
                observer=observer,
                spec=spec,
                batch_size=batch_size,
                deadline_seconds=deadline_seconds,
            )
            self._sessions[session_id] = session
        self.run_log.emit(
            "session_created",
            session=session_id,
            attack=attack.name,
            budget=budget,
            client=client,
        )
        return session

    def get(self, session_id: str) -> Optional[AttackSession]:
        with self._lock:
            return self._sessions.get(session_id)

    def start(self, session: AttackSession) -> Future:
        """Drive the session to completion on a worker thread."""
        return self._executor.submit(self.drive, session)

    def drive(self, session: AttackSession) -> AttackSession:
        """Run one session against the broker, blocking until it ends.

        During a drain the loop exits at the next query boundary -- the
        in-flight broker batch still completes and answers the pending
        query, but no further query is submitted -- leaving the session
        :data:`SUSPENDED` for persistence instead of failed.

        Cancellation and deadline expiry are enforced at the same
        boundary: the in-flight broker batch always settles (so
        co-batched sessions are never poisoned by one session's exit),
        then the verdict parks the session terminally with the exact
        query count charged at that boundary.
        """
        try:
            verdict = session.lifecycle_verdict()
            if verdict is not None:
                session.park(verdict)  # cancelled before it ever started
                request = None
            else:
                request = session.start()
            while request is not None:
                if self._draining:
                    session.suspend()
                    break
                verdict = session.lifecycle_verdict()
                if verdict is not None:
                    session.park(verdict)
                    break
                if isinstance(request, QueryBatch):
                    scores = self.broker.submit_many(request.images())
                else:
                    scores = self.broker.submit(request.image)
                request = session.advance(scores)
        except Exception as exc:
            session.fail(exc)
        finally:
            if session.state == SUSPENDED:
                self.run_log.emit(
                    "session_suspended",
                    session=session.session_id,
                    attack=session.attack.name,
                    queries=session.queries,
                )
            else:
                self._retire(session)
        return session

    def run_cooperative(
        self, sessions: Sequence[AttackSession]
    ) -> List[AttackSession]:
        """Drive sessions in deterministic lock-step rounds.

        Each round gathers every active session's pending request into
        one list -- a pending :class:`QueryBatch` contributes all its
        member images, a scalar query contributes one -- scores the
        whole round through
        :meth:`~repro.serve.broker.MicroBatchBroker.evaluate`, and
        advances each session with its slice of the answers.
        Single-threaded: results are bit-identical to driving each
        attack alone, and the round's model batch is the concatenation
        of every live session's pending work.
        """
        active: List[AttackSession] = []
        for session in sessions:
            verdict = session.lifecycle_verdict()
            if verdict is not None:
                session.park(verdict)
                self._retire(session)
            elif session.start() is not None:
                active.append(session)
            else:
                self._retire(session)
        while active:
            # the same per-round boundary check the threaded driver runs
            live: List[AttackSession] = []
            for session in active:
                verdict = session.lifecycle_verdict()
                if verdict is not None:
                    session.park(verdict)
                    self._retire(session)
                else:
                    live.append(session)
            active = live
            if not active:
                break
            spans: List[int] = []
            images: List[np.ndarray] = []
            for session in active:
                pending = session.pending
                if isinstance(pending, QueryBatch):
                    spans.append(len(pending))
                    images.extend(pending.images())
                else:
                    spans.append(1)
                    images.append(pending.image)
            answers = self.broker.evaluate(images)
            still: List[AttackSession] = []
            offset = 0
            for session, span in zip(active, spans):
                rows = answers[offset:offset + span]
                offset += span
                payload = (
                    np.asarray(rows)
                    if isinstance(session.pending, QueryBatch)
                    else rows[0]
                )
                try:
                    request = session.advance(payload)
                except Exception:
                    request = None  # session already failed in advance()
                if request is not None:
                    still.append(session)
                else:
                    self._retire(session)
            active = still
        return list(sessions)

    def shutdown(self) -> None:
        """Stop accepting work and release executor threads."""
        self.stop_reaper()
        self._executor.shutdown(wait=False)

    def drain(self) -> List[AttackSession]:
        """Gracefully park every live session; return the parked ones.

        Sets the draining flag (driver threads exit at their next query
        boundary, after the broker answers their in-flight query), waits
        for all drivers to finish, and cancels sessions still queued for
        a driver thread.  Returns every session left :data:`QUEUED` or
        :data:`SUSPENDED` -- the set a graceful shutdown persists.
        Idempotent; the manager accepts no new drives afterwards.
        """
        self.stop_reaper()
        self._draining = True
        self._executor.shutdown(wait=True, cancel_futures=True)
        with self._lock:
            return [
                session
                for session in self._sessions.values()
                if session.state in (QUEUED, RUNNING, SUSPENDED)
            ]

    # ------------------------------------------------------------------
    # TTL reaping
    # ------------------------------------------------------------------

    def reap(self, now: Optional[float] = None) -> Dict[str, int]:
        """One TTL sweep; returns ``{"reaped": n, "abandoned": m}``.

        Two ages are enforced (each ``None`` -> skipped):

        - terminal sessions unpolled for :attr:`session_ttl` seconds are
          dropped from the poll table entirely (subsequent polls get 410
          Gone via :meth:`was_reaped`), freeing their history slot;
        - live sessions unpolled for :attr:`idle_ttl` seconds --
          submitted and abandoned -- get a cancellation request, so
          their driver parks them at the next query boundary, their
          admission slot is released by the driver future's completion,
          and the next sweep reaps the terminal remains.

        ``now`` is wall-clock time, injectable for tests.
        """
        now = time.time() if now is None else now
        reaped: List[AttackSession] = []
        abandoned = 0
        with self._lock:
            for session in list(self._sessions.values()):
                idle_for = now - max(
                    session.last_polled_at, session.finished_at or 0.0
                )
                if session.state in TERMINAL_STATES:
                    if self.session_ttl is not None and idle_for >= self.session_ttl:
                        self._sessions.pop(session.session_id, None)
                        if session.session_id in self._finished_order:
                            self._finished_order.remove(session.session_id)
                        self._reaped_ids.append(session.session_id)
                        reaped.append(session)
                elif session.state in (QUEUED, RUNNING):
                    if (
                        self.idle_ttl is not None
                        and idle_for >= self.idle_ttl
                        and not session.cancel_requested
                    ):
                        session.cancel_requested = True
                        abandoned += 1
            del self._reaped_ids[:-DEFAULT_TOMBSTONES]
            self.reaped += len(reaped)
        for session in reaped:
            self.run_log.emit(
                "session_reaped",
                session=session.session_id,
                attack=session.attack.name,
                state=session.state,
                queries=session.queries,
                success=None if session.result is None else session.result.success,
                idle_seconds=now - session.last_polled_at,
            )
        return {"reaped": len(reaped), "abandoned": abandoned}

    def was_reaped(self, session_id: str) -> bool:
        """Whether an unknown id names a reaped session (-> 410 Gone)."""
        with self._lock:
            return session_id in self._reaped_ids

    def start_reaper(self, interval: float = 1.0) -> None:
        """Run :meth:`reap` on a daemon thread every ``interval`` seconds."""
        if interval <= 0:
            raise ValueError("reap interval must be positive")
        if self._reaper is not None:
            return
        self._reaper_halt.clear()

        def loop() -> None:
            while not self._reaper_halt.wait(interval):
                try:
                    self.reap()
                except Exception:  # the reaper must outlive any one sweep
                    pass

        self._reaper = threading.Thread(
            target=loop, name="session-reaper", daemon=True
        )
        self._reaper.start()

    def stop_reaper(self) -> None:
        if self._reaper is None:
            return
        self._reaper_halt.set()
        self._reaper.join(timeout=10.0)
        self._reaper = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def _retire(self, session: AttackSession) -> None:
        if session.state in (CANCELLED, EXPIRED):
            # mirrors the attack_summary shape: identity + final counts
            event = (
                "session_cancelled" if session.state == CANCELLED
                else "session_expired"
            )
            with self._lock:
                if session.state == CANCELLED:
                    self.cancelled += 1
                else:
                    self.expired += 1
            self.run_log.emit(
                event,
                session=session.session_id,
                attack=session.attack.name,
                queries=session.queries,
                budget=session.budget,
                deadline_seconds=session.deadline_seconds,
                success=None if session.result is None else session.result.success,
            )
        self.run_log.emit(
            "session_end",
            session=session.session_id,
            attack=session.attack.name,
            state=session.state,
            queries=session.queries,
            success=None if session.result is None else session.result.success,
            error=session.error,
        )
        with self._lock:
            self._finished_order.append(session.session_id)
            while len(self._finished_order) > self._history:
                stale = self._finished_order.pop(0)
                self._sessions.pop(stale, None)

    def lifecycle_stats(self) -> Dict:
        """Lifecycle counters and TTL policy for ``/metrics``."""
        with self._lock:
            return {
                "cancelled": self.cancelled,
                "expired": self.expired,
                "reaped": self.reaped,
                "session_ttl": self.session_ttl,
                "idle_ttl": self.idle_ttl,
            }

    def active_count(self) -> int:
        with self._lock:
            return sum(
                1
                for session in self._sessions.values()
                if session.state in (QUEUED, RUNNING)
            )

    def states(self) -> Dict[str, int]:
        """How many sessions sit in each lifecycle state."""
        with self._lock:
            totals: Dict[str, int] = {}
            for session in self._sessions.values():
                totals[session.state] = totals.get(session.state, 0) + 1
            return totals

    def query_counts(self) -> Dict[str, int]:
        """Per-session counted submissions, for ``/metrics``."""
        with self._lock:
            return {
                session_id: session.queries
                for session_id, session in self._sessions.items()
            }

    def list_sessions(self, limit: int = 100) -> List[Dict]:
        with self._lock:
            sessions = sorted(
                self._sessions.values(), key=lambda s: s.created_at, reverse=True
            )[:limit]
        return [session.to_dict() for session in sessions]
