"""Attack-as-a-service: micro-batched query serving for one-pixel attacks.

The serving stack, bottom to top:

- :mod:`repro.serve.broker` -- the micro-batching query broker that
  coalesces concurrent sessions' classifier queries into batched
  forward passes behind a shared query cache;
- :mod:`repro.serve.sessions` -- steppable attack sessions over the
  generator-based :meth:`~repro.attacks.base.OnePixelAttack.steps`
  protocol, with per-session paper-faithful query accounting;
- :mod:`repro.serve.admission` -- admission control and per-client
  rate limiting;
- :mod:`repro.serve.protocol` -- the JSON wire protocol;
- :mod:`repro.serve.server` -- the asyncio HTTP front end and the
  ``repro-serve`` entry point.
"""

from repro.serve.admission import AdmissionControl, RateLimiter, TokenBucket
from repro.serve.broker import BatchPolicy, BrokerStopped, MicroBatchBroker
from repro.serve.metrics import BrokerMetrics, Histogram
from repro.serve.protocol import (
    ATTACK_SPECS,
    ProtocolError,
    build_attack,
    decode_attack_request,
    decode_image,
    encode_image,
)
from repro.serve.server import (
    AttackServer,
    ServeConfig,
    ServerHandle,
    build_classifier,
    main,
)
from repro.serve.sessions import AttackSession, SessionManager

__all__ = [
    "ATTACK_SPECS",
    "AdmissionControl",
    "AttackServer",
    "AttackSession",
    "BatchPolicy",
    "BrokerMetrics",
    "BrokerStopped",
    "Histogram",
    "MicroBatchBroker",
    "ProtocolError",
    "RateLimiter",
    "ServeConfig",
    "ServerHandle",
    "SessionManager",
    "TokenBucket",
    "build_attack",
    "build_classifier",
    "decode_attack_request",
    "decode_image",
    "encode_image",
    "main",
]
