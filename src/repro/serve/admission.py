"""Admission control and per-client rate limiting.

A serving deployment has to refuse work it cannot absorb: an unbounded
session backlog turns overload into unbounded memory growth and
timeouts for everyone.  The server therefore gates submissions twice --

- :class:`AdmissionControl` caps the number of sessions that may be
  queued or running at once (global backpressure; excess submissions
  get HTTP 429 with ``Retry-After``);
- :class:`RateLimiter` applies a per-client token bucket so one noisy
  client cannot starve the rest even below the global cap.

Both are deliberately tiny, stdlib-only, and injectable with a fake
clock for tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict


class AdmissionControl:
    """A bounded concurrency gate over live sessions."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._active = 0
        self.admitted = 0
        self.refused = 0

    def try_acquire(self) -> bool:
        """Claim a slot; ``False`` means the caller must shed the work."""
        with self._lock:
            if self._active >= self.capacity:
                self.refused += 1
                return False
            self._active += 1
            self.admitted += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._active > 0:
                self._active -= 1

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    def stats(self) -> Dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "active": self._active,
                "admitted": self.admitted,
                "refused": self.refused,
            }


class TokenBucket:
    """The standard leaky-bucket-as-meter: refill at ``rate``, cap at ``burst``."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one request")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._updated = clock()

    def allow(self) -> bool:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class RateLimiter:
    """Per-client token buckets, created on first sight.

    ``max_clients`` bounds the bucket table so an attacker cycling
    client identities cannot grow it without limit; when full, the
    stalest bucket (least recently consulted) is evicted.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 4096,
    ):
        if max_clients < 1:
            raise ValueError("max_clients must be at least 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "Dict[str, TokenBucket]" = {}
        self._last_seen: "Dict[str, float]" = {}
        self._max_clients = max_clients
        self.allowed = 0
        self.limited = 0

    def allow(self, client: str) -> bool:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self._max_clients:
                    stalest = min(self._last_seen, key=self._last_seen.get)
                    self._buckets.pop(stalest, None)
                    self._last_seen.pop(stalest, None)
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[client] = bucket
            self._last_seen[client] = self._clock()
            verdict = bucket.allow()
            if verdict:
                self.allowed += 1
            else:
                self.limited += 1
            return verdict

    def stats(self) -> Dict:
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "allowed": self.allowed,
                "limited": self.limited,
            }
