"""Admission control and per-client rate limiting.

A serving deployment has to refuse work it cannot absorb: an unbounded
session backlog turns overload into unbounded memory growth and
timeouts for everyone.  The server therefore gates submissions twice --

- :class:`AdmissionControl` caps the number of sessions that may be
  queued or running at once (global backpressure; excess submissions
  get HTTP 429 with ``Retry-After``);
- :class:`RateLimiter` applies a per-client token bucket so one noisy
  client cannot starve the rest even below the global cap;
- :class:`OverloadPolicy` sheds *early*: when broker queue depth or the
  active-session count crosses a high-water mark the server answers 503
  with ``Retry-After`` instead of letting admitted work queue into
  latency collapse (the classic load-shedding pattern: refuse at the
  door while the house is still standing).

All are deliberately tiny, stdlib-only, and injectable with a fake
clock for tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional


class AdmissionControl:
    """A bounded concurrency gate over live sessions."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._active = 0
        self.admitted = 0
        self.refused = 0

    def try_acquire(self) -> bool:
        """Claim a slot; ``False`` means the caller must shed the work."""
        with self._lock:
            if self._active >= self.capacity:
                self.refused += 1
                return False
            self._active += 1
            self.admitted += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._active > 0:
                self._active -= 1

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    def stats(self) -> Dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "active": self._active,
                "admitted": self.admitted,
                "refused": self.refused,
            }


class OverloadPolicy:
    """High-water-mark shedding over broker queue depth and live sessions.

    Distinct from :class:`AdmissionControl`: admission is a hard cap on
    sessions (429 -- the client did something over quota), while
    shedding is a *load* signal (503 -- the service is temporarily
    saturated, retry after a bounded pause).  Either watermark may be
    ``None`` to disable that axis.
    """

    def __init__(
        self,
        max_queue_depth: Optional[int] = None,
        max_active: Optional[int] = None,
        retry_after: float = 1.0,
    ):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1 (or None)")
        if max_active is not None and max_active < 1:
            raise ValueError("max_active must be at least 1 (or None)")
        if retry_after <= 0:
            raise ValueError("retry_after must be positive")
        self.max_queue_depth = max_queue_depth
        self.max_active = max_active
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self.shed = 0

    def should_shed(self, queue_depth: int, active: int) -> Optional[str]:
        """The shed reason when a watermark is crossed, else ``None``.

        Counts every shed so ``/metrics`` can expose the totals.
        """
        reason = None
        if (
            self.max_queue_depth is not None
            and queue_depth >= self.max_queue_depth
        ):
            reason = (
                f"broker queue depth {queue_depth} >= {self.max_queue_depth}"
            )
        elif self.max_active is not None and active >= self.max_active:
            reason = f"active sessions {active} >= {self.max_active}"
        if reason is not None:
            with self._lock:
                self.shed += 1
        return reason

    def stats(self) -> Dict:
        with self._lock:
            return {
                "max_queue_depth": self.max_queue_depth,
                "max_active": self.max_active,
                "retry_after": self.retry_after,
                "shed": self.shed,
            }


class TokenBucket:
    """The standard leaky-bucket-as-meter: refill at ``rate``, cap at ``burst``."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one request")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._updated = clock()

    def allow(self) -> bool:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class RateLimiter:
    """Per-client token buckets, created on first sight.

    ``max_clients`` bounds the bucket table so an attacker cycling
    client identities cannot grow it without limit; when full, the
    stalest bucket (least recently consulted) is evicted.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 4096,
    ):
        if max_clients < 1:
            raise ValueError("max_clients must be at least 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "Dict[str, TokenBucket]" = {}
        self._last_seen: "Dict[str, float]" = {}
        self._max_clients = max_clients
        self.allowed = 0
        self.limited = 0

    def allow(self, client: str) -> bool:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self._max_clients:
                    stalest = min(self._last_seen, key=self._last_seen.get)
                    self._buckets.pop(stalest, None)
                    self._last_seen.pop(stalest, None)
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[client] = bucket
            self._last_seen[client] = self._clock()
            verdict = bucket.allow()
            if verdict:
                self.allowed += 1
            else:
                self.limited += 1
            return verdict

    def stats(self) -> Dict:
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "allowed": self.allowed,
                "limited": self.limited,
            }
