"""The JSON wire protocol of the attack service.

Requests and responses are plain JSON so any HTTP client (curl, a
browser, the load generator in ``examples/serve_clients.py``) can drive
the service.  This module owns the translation between wire payloads
and typed objects -- image decoding with strict validation, attack
construction from a named spec, and JSON-safe result encoding -- so the
HTTP layer stays a thin router.

An attack submission looks like::

    {
      "attack": "fixed",            // see ATTACK_SPECS
      "image": [[[0.1, 0.2, 0.3], ...], ...],   // (H, W, 3) floats in [0, 1]
      "true_class": 3,
      "budget": 512,                // optional
      "target_class": null,         // optional
      "deadline_seconds": 30.0,     // optional wall-clock budget
      "params": {"seed": 7}         // optional, attack-specific
    }

Errors raise :class:`ProtocolError` carrying the HTTP status to return.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.attacks.base import OnePixelAttack
from repro.attacks.fixed_sketch import FixedSketchAttack
from repro.attacks.random_search import UniformRandomAttack, UniformRandomConfig
from repro.attacks.sketch_attack import SketchAttack
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig
from repro.attacks.su_opa import SuOPA, SuOPAConfig
from repro.core.dsl.ast import Program

#: Hard cap on accepted image pixels (H * W); keeps a hostile payload
#: from allocating unbounded memory before validation can reject it.
MAX_IMAGE_PIXELS = 256 * 256


class ProtocolError(Exception):
    """A malformed or unacceptable request, with its HTTP status."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def _build_sketch(params: Dict) -> OnePixelAttack:
    program_payload = params.get("program")
    if program_payload is None:
        raise ProtocolError(
            "attack 'sketch' requires params.program (a serialized program); "
            "use attack 'fixed' for the zero-cost fixed prioritization"
        )
    try:
        program = Program.from_dict(program_payload)
    except Exception as exc:
        raise ProtocolError(f"invalid program payload: {exc}") from exc
    return SketchAttack(program)


def _build_random(params: Dict) -> OnePixelAttack:
    return UniformRandomAttack(UniformRandomConfig(seed=int(params.get("seed", 0))))


def _build_su_opa(params: Dict) -> OnePixelAttack:
    kwargs = {"seed": int(params.get("seed", 0))}
    if "population_size" in params:
        kwargs["population_size"] = int(params["population_size"])
    if "max_generations" in params:
        kwargs["max_generations"] = int(params["max_generations"])
    try:
        return SuOPA(SuOPAConfig(**kwargs))
    except ValueError as exc:
        raise ProtocolError(f"invalid su-opa params: {exc}") from exc


def _build_sparse_rs(params: Dict) -> OnePixelAttack:
    return SparseRS(SparseRSConfig(seed=int(params.get("seed", 0))))


#: Wire names -> attack factories.  ``fixed`` is the paper's zero-cost
#: Sketch+False baseline and the serving default.
ATTACK_SPECS: Dict[str, Callable[[Dict], OnePixelAttack]] = {
    "fixed": lambda params: FixedSketchAttack(),
    "sketch": _build_sketch,
    "random": _build_random,
    "su-opa": _build_su_opa,
    "sparse-rs": _build_sparse_rs,
}


def build_attack(name: str, params: Optional[Dict] = None) -> OnePixelAttack:
    """Instantiate the attack a request names."""
    params = params or {}
    if not isinstance(params, dict):
        raise ProtocolError("params must be an object")
    try:
        factory = ATTACK_SPECS[name]
    except KeyError:
        raise ProtocolError(
            f"unknown attack {name!r}; available: {sorted(ATTACK_SPECS)}"
        ) from None
    return factory(params)


def decode_image(payload) -> np.ndarray:
    """Nested JSON lists -> validated (H, W, 3) float64 image in [0, 1]."""
    try:
        image = np.asarray(payload, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"image is not a numeric array: {exc}") from exc
    if image.ndim != 3 or image.shape[2] != 3:
        raise ProtocolError(f"image must be (H, W, 3), got shape {image.shape}")
    if image.shape[0] * image.shape[1] > MAX_IMAGE_PIXELS:
        raise ProtocolError(
            f"image exceeds the {MAX_IMAGE_PIXELS}-pixel service limit", status=413
        )
    if not np.all(np.isfinite(image)):
        raise ProtocolError("image contains non-finite values")
    if image.min() < 0.0 or image.max() > 1.0:
        raise ProtocolError("image values must lie in [0, 1]")
    return image


def encode_image(image: np.ndarray):
    """(H, W, 3) array -> nested JSON lists."""
    return np.asarray(image, dtype=np.float64).tolist()


class AttackRequest:
    """A validated attack submission."""

    def __init__(
        self,
        attack_name: str,
        attack: OnePixelAttack,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int],
        target_class: Optional[int],
        deadline_seconds: Optional[float] = None,
    ):
        self.attack_name = attack_name
        self.attack = attack
        self.image = image
        self.true_class = true_class
        self.budget = budget
        self.target_class = target_class
        self.deadline_seconds = deadline_seconds


def _optional_int(payload: Dict, key: str, minimum: int) -> Optional[int]:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{key} must be an integer")
    if value < minimum:
        raise ProtocolError(f"{key} must be >= {minimum}")
    return value


def _optional_seconds(payload: Dict, key: str) -> Optional[float]:
    """A positive, finite number of seconds, or ``None`` when absent."""
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{key} must be a number of seconds")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ProtocolError(f"{key} must be a positive, finite number of seconds")
    return value


def decode_attack_request(payload) -> AttackRequest:
    """Parse and validate one ``POST /attacks`` JSON body."""
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    name = payload.get("attack", "fixed")
    if not isinstance(name, str):
        raise ProtocolError("attack must be a string")
    if "image" not in payload:
        raise ProtocolError("missing required field: image")
    image = decode_image(payload["image"])
    if "true_class" not in payload:
        raise ProtocolError("missing required field: true_class")
    true_class = payload["true_class"]
    if isinstance(true_class, bool) or not isinstance(true_class, int):
        raise ProtocolError("true_class must be an integer")
    if true_class < 0:
        raise ProtocolError("true_class must be non-negative")
    budget = _optional_int(payload, "budget", minimum=0)
    target_class = _optional_int(payload, "target_class", minimum=0)
    if target_class is not None and target_class == true_class:
        raise ProtocolError("target_class must differ from true_class")
    deadline_seconds = _optional_seconds(payload, "deadline_seconds")
    attack = build_attack(name, payload.get("params"))
    return AttackRequest(
        attack_name=name,
        attack=attack,
        image=image,
        true_class=true_class,
        budget=budget,
        target_class=target_class,
        deadline_seconds=deadline_seconds,
    )
