"""A recursive-descent parser for the condition language's concrete syntax.

Accepts exactly what :mod:`repro.core.dsl.printer` emits, plus benign
whitespace variations and the ``x_l`` spelling of the original pixel used
in the paper's prose.  Examples::

    parse_condition("max(x[l]) > 0.19")
    parse_condition("score_diff(N(x), N(x[l<-p]), c_x) < 0.21")
    parse_condition("center(l) < 8")
    parse_condition("false")
    parse_program('''
        [B1] score_diff(N(x), N(x[l<-p]), c_x) < 0.21
        [B2] max(x[l]) > 0.19
        [B3] score_diff(N(x), N(x[l<-p]), c_x) > 0.25
        [B4] center(l) < 8
    ''')
"""

from __future__ import annotations

import re
from typing import List

from repro.core.dsl.ast import (
    Avg,
    Center,
    Comparison,
    Condition,
    ConditionLike,
    ConstantCondition,
    Constant,
    Max,
    Min,
    PixelRef,
    Program,
    ScoreDiff,
)


class ParseError(ValueError):
    """Raised on malformed condition syntax."""


_SCORE_DIFF_RE = re.compile(
    r"score_diff\s*\(\s*N\(x\)\s*,\s*N\(x\[l\s*<-\s*p\]\)\s*,\s*c_?x'?\s*\)"
)
_PIXEL_FN_RE = re.compile(r"(max|min|avg)\s*\(\s*(x\[l\]|x_l|p)\s*\)")
_CENTER_RE = re.compile(r"center\s*\(\s*l\s*\)")
_NUMBER_RE = re.compile(r"[-+]?(\d+\.?\d*|\.\d+)([eE][-+]?\d+)?")
_LABEL_RE = re.compile(r"^\[B[1-4]\]\s*")

_PIXEL_REFS = {"x[l]": PixelRef.ORIGINAL, "x_l": PixelRef.ORIGINAL, "p": PixelRef.PERTURBATION}
_PIXEL_FNS = {"max": Max, "min": Min, "avg": Avg}


def parse_condition(text: str) -> ConditionLike:
    """Parse one condition."""
    stripped = text.strip()
    lowered = stripped.lower()
    if lowered == "true":
        return ConstantCondition(True)
    if lowered == "false":
        return ConstantCondition(False)

    # function part
    remainder = stripped
    match = _SCORE_DIFF_RE.match(remainder)
    if match:
        function = ScoreDiff()
    else:
        match = _PIXEL_FN_RE.match(remainder)
        if match:
            function = _PIXEL_FNS[match.group(1)](_PIXEL_REFS[match.group(2)])
        else:
            match = _CENTER_RE.match(remainder)
            if match:
                function = Center()
            else:
                raise ParseError(f"cannot parse function in {text!r}")
    remainder = remainder[match.end() :].strip()

    # comparison
    if remainder.startswith(">"):
        comparison = Comparison.GT
    elif remainder.startswith("<"):
        comparison = Comparison.LT
    else:
        raise ParseError(f"expected '<' or '>' after function in {text!r}")
    remainder = remainder[1:].strip()

    # constant
    number = _NUMBER_RE.fullmatch(remainder)
    if not number:
        raise ParseError(f"cannot parse constant in {text!r}")
    return Condition(comparison, function, Constant(float(remainder)))


def parse_program(text: str) -> Program:
    """Parse a four-line program (``[B1]``..``[B4]`` labels optional)."""
    lines: List[str] = [line.strip() for line in text.strip().splitlines() if line.strip()]
    if len(lines) != 4:
        raise ParseError(f"a program has exactly four conditions, got {len(lines)}")
    conditions = []
    for line in lines:
        without_label = _LABEL_RE.sub("", line)
        conditions.append(parse_condition(without_label))
    return Program(*conditions)
