"""The condition language of Figure 1: AST, grammar, interpreter,
printer, parser, random generation and mutation."""

from repro.core.dsl.ast import (
    Avg,
    Center,
    Condition,
    Constant,
    ConstantCondition,
    Max,
    Min,
    PixelRef,
    Program,
    ScoreDiff,
)
from repro.core.dsl.analysis import (
    analyze_program,
    corner_support,
    is_tautology,
    is_vacuous,
    lint_program,
)
from repro.core.dsl.grammar import Grammar
from repro.core.dsl.interpreter import evaluate_condition, evaluate_function
from repro.core.dsl.library import (
    eager_locality_program,
    fixed_program,
    paper_example_program,
)
from repro.core.dsl.mutation import mutate_program
from repro.core.dsl.parser import parse_condition, parse_program
from repro.core.dsl.printer import format_condition, format_program
from repro.core.dsl.typecheck import CheckResult, check_condition, check_program

__all__ = [
    "Program",
    "Condition",
    "ConstantCondition",
    "Constant",
    "Max",
    "Min",
    "Avg",
    "ScoreDiff",
    "Center",
    "PixelRef",
    "Grammar",
    "evaluate_condition",
    "evaluate_function",
    "mutate_program",
    "format_condition",
    "format_program",
    "parse_condition",
    "parse_program",
    "check_program",
    "check_condition",
    "CheckResult",
    "paper_example_program",
    "fixed_program",
    "eager_locality_program",
    "corner_support",
    "is_vacuous",
    "is_tautology",
    "analyze_program",
    "lint_program",
]
