"""Static validation of condition programs.

The synthesizer only ever produces well-typed programs by construction,
but programs also arrive from *outside* the search: parsed from text,
loaded from JSON artifacts, or hand-written.  The checker validates those
against a :class:`~repro.core.dsl.grammar.Grammar` and reports precise
diagnostics instead of failing deep inside an attack run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.dsl.ast import (
    Avg,
    Center,
    Comparison,
    Condition,
    ConditionLike,
    Constant,
    ConstantCondition,
    Max,
    Min,
    PixelRef,
    Program,
    ScoreDiff,
)
from repro.core.dsl.grammar import Grammar

_KNOWN_FUNCTIONS = (Max, Min, Avg, ScoreDiff, Center)


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding."""

    slot: str  # "b1" .. "b4"
    message: str
    severity: str = "error"  # "error" | "warning"

    def __str__(self) -> str:
        return f"[{self.slot}] {self.severity}: {self.message}"


@dataclass
class CheckResult:
    """All findings for one program."""

    diagnostics: List[Diagnostic]

    @property
    def ok(self) -> bool:
        return not any(d.severity == "error" for d in self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]


def check_condition(
    condition: ConditionLike, grammar: Grammar, slot: str
) -> List[Diagnostic]:
    """Validate one condition against the grammar's typed ranges."""
    diagnostics: List[Diagnostic] = []
    if isinstance(condition, ConstantCondition):
        # literals are a deliberate extension (the ablation baseline);
        # they are valid but outside the synthesizer's search space
        diagnostics.append(
            Diagnostic(
                slot,
                "literal condition is outside the synthesizable grammar",
                severity="warning",
            )
        )
        return diagnostics
    if not isinstance(condition, Condition):
        diagnostics.append(
            Diagnostic(slot, f"not a condition node: {type(condition).__name__}")
        )
        return diagnostics
    if not isinstance(condition.comparison, Comparison):
        diagnostics.append(
            Diagnostic(slot, f"invalid comparison {condition.comparison!r}")
        )
    if not isinstance(condition.function, _KNOWN_FUNCTIONS):
        diagnostics.append(
            Diagnostic(
                slot, f"unknown function {type(condition.function).__name__}"
            )
        )
        return diagnostics
    if hasattr(condition.function, "pixel") and not isinstance(
        condition.function.pixel, PixelRef
    ):
        diagnostics.append(
            Diagnostic(slot, f"invalid pixel reference {condition.function.pixel!r}")
        )
    if not isinstance(condition.constant, Constant):
        diagnostics.append(Diagnostic(slot, "constant node missing"))
        return diagnostics
    if not grammar.constant_in_range(condition.function, condition.constant):
        diagnostics.append(
            Diagnostic(
                slot,
                f"constant {condition.constant.value:g} outside the typed "
                f"range for {condition.function.kind.value} on a "
                f"{grammar.image_shape[0]}x{grammar.image_shape[1]} image",
            )
        )
    return diagnostics


def check_program(program: Program, grammar: Grammar) -> CheckResult:
    """Validate a whole program; ``result.ok`` gates acceptance."""
    diagnostics: List[Diagnostic] = []
    conditions = program.conditions
    if len(conditions) != 4:
        diagnostics.append(
            Diagnostic("program", f"expected 4 conditions, got {len(conditions)}")
        )
    for index, condition in enumerate(conditions):
        diagnostics.extend(
            check_condition(condition, grammar, slot=f"b{index + 1}")
        )
    return CheckResult(diagnostics=diagnostics)
