"""Typed random generation of conditions (the search-space definition).

The synthesizer's search space is every instantiation of the sketch with
well-typed conditions.  A :class:`Grammar` knows the image shape (so the
``center`` threshold is drawn from the meaningful range) and samples
functions, comparisons and *typed constants*:

- pixel functions (``max``/``min``/``avg``): thresholds in ``[0, 1]``;
- ``score_diff``: thresholds in ``[-0.5, 0.5]`` (confidence drops live in
  ``[-1, 1]`` but are concentrated near zero);
- ``center``: thresholds in ``[0, max-center-distance]``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.dsl.ast import (
    Avg,
    Center,
    Comparison,
    Condition,
    Constant,
    Function,
    FunctionKind,
    Max,
    Min,
    PixelRef,
    Program,
    ScoreDiff,
)
from repro.core.geometry import max_center_distance

_PIXEL_FUNCTION_TYPES = (Max, Min, Avg)


class Grammar:
    """Samples well-typed conditions and programs for a given image shape."""

    def __init__(self, image_shape: Tuple[int, int], score_diff_range: float = 0.5):
        d1, d2 = image_shape
        if d1 <= 0 or d2 <= 0:
            raise ValueError("image dimensions must be positive")
        if score_diff_range <= 0:
            raise ValueError("score_diff_range must be positive")
        self.image_shape = (d1, d2)
        self.score_diff_range = score_diff_range
        self.max_center = max_center_distance(self.image_shape)

    # -- sampling ----------------------------------------------------------------

    def random_function(self, rng: np.random.Generator) -> Function:
        choice = rng.integers(0, 5)
        if choice < 3:
            pixel = PixelRef.ORIGINAL if rng.integers(0, 2) == 0 else PixelRef.PERTURBATION
            return _PIXEL_FUNCTION_TYPES[choice](pixel)
        if choice == 3:
            return ScoreDiff()
        return Center()

    def random_constant(self, rng: np.random.Generator, function: Function) -> Constant:
        """A threshold drawn from the function's typed range."""
        kind = function.kind
        if kind is FunctionKind.SCORE_DIFF:
            value = rng.uniform(-self.score_diff_range, self.score_diff_range)
        elif kind is FunctionKind.CENTER:
            value = rng.uniform(0.0, self.max_center)
        else:
            value = rng.uniform(0.0, 1.0)
        return Constant(float(value))

    def random_comparison(self, rng: np.random.Generator) -> Comparison:
        return Comparison.GT if rng.integers(0, 2) == 0 else Comparison.LT

    def random_condition(self, rng: np.random.Generator) -> Condition:
        function = self.random_function(rng)
        return Condition(
            comparison=self.random_comparison(rng),
            function=function,
            constant=self.random_constant(rng, function),
        )

    def random_program(self, rng: np.random.Generator) -> Program:
        return Program(*(self.random_condition(rng) for _ in range(4)))

    # -- typing -------------------------------------------------------------------

    def constant_in_range(self, function: Function, constant: Constant) -> bool:
        """Whether ``constant`` lies in the typed range for ``function``."""
        kind = function.kind
        value = constant.value
        if kind is FunctionKind.SCORE_DIFF:
            return -self.score_diff_range <= value <= self.score_diff_range
        if kind is FunctionKind.CENTER:
            return 0.0 <= value <= self.max_center
        return 0.0 <= value <= 1.0
