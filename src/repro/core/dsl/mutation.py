"""Tree mutation for the stochastic search (Section 4).

A program's abstract syntax tree has a root with four condition children;
each condition has a function child and a constant child (Figure 2).  A
mutation uniformly selects one node -- the root, one of the 4 conditions,
one of the 4 functions, or one of the 4 constants (13 nodes total) -- and
regenerates its entire subtree with fresh samples from the grammar, so
the result is always a well-typed program in the search space.

When a *function* node is regenerated to a kind whose constant range
differs from the old kind's, the sibling constant is resampled too;
otherwise the mutated condition could pair, e.g., a ``center`` function
with a ``[0, 1]`` pixel threshold and fall outside the typed space.
"""

from __future__ import annotations

import numpy as np

from repro.core.dsl.ast import Condition, ConstantCondition, Program
from repro.core.dsl.grammar import Grammar

#: node ids: 0 = root; 1..4 = conditions; 5..8 = functions; 9..12 = constants
NUM_MUTATION_SITES = 13


def mutate_program(
    program: Program, grammar: Grammar, rng: np.random.Generator
) -> Program:
    """One uniformly-random subtree mutation of ``program``."""
    site = int(rng.integers(0, NUM_MUTATION_SITES))
    if site == 0:
        return grammar.random_program(rng)
    index = (site - 1) % 4
    condition = program.conditions[index]
    if site <= 4 or isinstance(condition, ConstantCondition):
        # condition node (or a literal, which has no typed children):
        # regenerate the whole condition
        return program.replace(index, grammar.random_condition(rng))
    if site <= 8:
        return program.replace(index, _mutate_function(condition, grammar, rng))
    return program.replace(index, _mutate_constant(condition, grammar, rng))


def _mutate_function(
    condition: Condition, grammar: Grammar, rng: np.random.Generator
) -> Condition:
    function = grammar.random_function(rng)
    constant = condition.constant
    if not grammar.constant_in_range(function, constant):
        constant = grammar.random_constant(rng, function)
    return Condition(condition.comparison, function, constant)


def _mutate_constant(
    condition: Condition, grammar: Grammar, rng: np.random.Generator
) -> Condition:
    constant = grammar.random_constant(rng, condition.function)
    return Condition(condition.comparison, condition.function, constant)
