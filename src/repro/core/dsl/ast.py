"""Abstract syntax of the condition language (Figure 1).

The grammar is::

    P ::= (B1, B2, B3, B4)
    B ::= F > r | F < r
    F ::= max(p) | min(p) | avg(p)
        | score_diff(N(x), N(x[l<-p]), c')
        | center(l)

A pixel argument ``p`` may refer to the original pixel ``x[l]`` (as in the
paper's worked example, ``max(x_l) > 0.19``) or to the perturbation value
``p``; :class:`PixelRef` distinguishes the two.

One extension beyond the grammar: :class:`ConstantCondition` represents a
literal ``true``/``false`` condition.  It exists only so the paper's
*Sketch+False* ablation baseline (Appendix C) is a first-class program;
the random generator and the synthesizer never produce it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple, Union


class PixelRef(enum.Enum):
    """Which pixel a pixel-function inspects."""

    ORIGINAL = "x[l]"  # the clean image's pixel at the pair's location
    PERTURBATION = "p"  # the RGB value being written


class FunctionKind(enum.Enum):
    """The function alternatives of nonterminal ``F``."""

    MAX = "max"
    MIN = "min"
    AVG = "avg"
    SCORE_DIFF = "score_diff"
    CENTER = "center"


@dataclass(frozen=True)
class PixelFunction:
    """Shared shape of ``max``/``min``/``avg`` over a pixel reference."""

    pixel: PixelRef

    @property
    def kind(self) -> FunctionKind:
        raise NotImplementedError


@dataclass(frozen=True)
class Max(PixelFunction):
    kind = FunctionKind.MAX


@dataclass(frozen=True)
class Min(PixelFunction):
    kind = FunctionKind.MIN


@dataclass(frozen=True)
class Avg(PixelFunction):
    kind = FunctionKind.AVG


@dataclass(frozen=True)
class ScoreDiff:
    """``score_diff(N(x), N(x[l<-p]), c_x)``: the true-class confidence drop."""

    kind = FunctionKind.SCORE_DIFF


@dataclass(frozen=True)
class Center:
    """``center(l)``: Linf distance of the location from the image center."""

    kind = FunctionKind.CENTER


Function = Union[Max, Min, Avg, ScoreDiff, Center]


@dataclass(frozen=True)
class Constant:
    """The real-valued threshold ``r``."""

    value: float

    def __post_init__(self):
        if not isinstance(self.value, (int, float)):
            raise TypeError("constant must be a real number")
        object.__setattr__(self, "value", float(self.value))


class Comparison(enum.Enum):
    """The inequality of a condition."""

    GT = ">"
    LT = "<"


@dataclass(frozen=True)
class Condition:
    """``F > r`` or ``F < r``."""

    comparison: Comparison
    function: Function
    constant: Constant


@dataclass(frozen=True)
class ConstantCondition:
    """A literal boolean condition (extension for the ablation baselines)."""

    value: bool


ConditionLike = Union[Condition, ConstantCondition]


@dataclass(frozen=True)
class Program:
    """A full instantiation of the sketch: the four conditions.

    ``b1``/``b2`` guard the push-back reordering of location / perturbation
    neighbours; ``b3``/``b4`` guard the eager front-checking (Algorithm 1).
    """

    b1: ConditionLike
    b2: ConditionLike
    b3: ConditionLike
    b4: ConditionLike

    @property
    def conditions(self) -> Tuple[ConditionLike, ConditionLike, ConditionLike, ConditionLike]:
        return (self.b1, self.b2, self.b3, self.b4)

    def replace(self, index: int, condition: ConditionLike) -> "Program":
        """A copy of this program with condition ``index`` (0-3) replaced."""
        conditions = list(self.conditions)
        conditions[index] = condition
        return Program(*conditions)

    @staticmethod
    def constant(value: bool) -> "Program":
        """The all-``value`` program; ``Program.constant(False)`` is the
        paper's fixed-prioritization baseline (Sketch+False)."""
        condition = ConstantCondition(value)
        return Program(condition, condition, condition, condition)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        return {"conditions": [_condition_to_dict(c) for c in self.conditions]}

    @staticmethod
    def from_dict(payload: Dict) -> "Program":
        conditions = [_condition_from_dict(c) for c in payload["conditions"]]
        if len(conditions) != 4:
            raise ValueError("a program has exactly four conditions")
        return Program(*conditions)


def _function_to_dict(function: Function) -> Dict:
    data = {"kind": function.kind.value}
    if isinstance(function, PixelFunction):
        data["pixel"] = function.pixel.value
    return data


_PIXEL_FUNCTION_TYPES = {
    FunctionKind.MAX: Max,
    FunctionKind.MIN: Min,
    FunctionKind.AVG: Avg,
}


def _function_from_dict(data: Dict) -> Function:
    kind = FunctionKind(data["kind"])
    if kind in _PIXEL_FUNCTION_TYPES:
        return _PIXEL_FUNCTION_TYPES[kind](PixelRef(data["pixel"]))
    if kind is FunctionKind.SCORE_DIFF:
        return ScoreDiff()
    return Center()


def _condition_to_dict(condition: ConditionLike) -> Dict:
    if isinstance(condition, ConstantCondition):
        return {"literal": condition.value}
    return {
        "comparison": condition.comparison.value,
        "function": _function_to_dict(condition.function),
        "constant": condition.constant.value,
    }


def _condition_from_dict(data: Dict) -> ConditionLike:
    if "literal" in data:
        return ConstantCondition(bool(data["literal"]))
    return Condition(
        comparison=Comparison(data["comparison"]),
        function=_function_from_dict(data["function"]),
        constant=Constant(float(data["constant"])),
    )
