"""Evaluation of conditions against an :class:`~repro.core.context.EvalContext`.

Kept separate from the AST so the syntax stays a plain data structure
(printable, parseable, mutable) and the semantics live in one place.
"""

from __future__ import annotations

import numpy as np

from repro.core.context import EvalContext
from repro.core.dsl.ast import (
    Avg,
    Center,
    Comparison,
    Condition,
    ConditionLike,
    ConstantCondition,
    Function,
    Max,
    Min,
    PixelRef,
    ScoreDiff,
)


def _resolve_pixel(ref: PixelRef, context: EvalContext) -> np.ndarray:
    if ref is PixelRef.ORIGINAL:
        return context.original_pixel
    return context.perturbation


def evaluate_function(function: Function, context: EvalContext) -> float:
    """The real value of ``F`` in ``context``."""
    if isinstance(function, Max):
        return float(_resolve_pixel(function.pixel, context).max())
    if isinstance(function, Min):
        return float(_resolve_pixel(function.pixel, context).min())
    if isinstance(function, Avg):
        return float(_resolve_pixel(function.pixel, context).mean())
    if isinstance(function, ScoreDiff):
        return context.score_diff()
    if isinstance(function, Center):
        return context.center()
    raise TypeError(f"unknown function node {function!r}")


def evaluate_condition(condition: ConditionLike, context: EvalContext) -> bool:
    """The truth value of ``B`` in ``context``."""
    if isinstance(condition, ConstantCondition):
        return condition.value
    value = evaluate_function(condition.function, context)
    if condition.comparison is Comparison.GT:
        return value > condition.constant.value
    return value < condition.constant.value
