"""Pretty-printing of conditions and programs.

The concrete syntax round-trips through :mod:`repro.core.dsl.parser`::

    score_diff(N(x), N(x[l<-p]), c_x) < 0.21
    max(x[l]) > 0.19
    false
"""

from __future__ import annotations

from repro.core.dsl.ast import (
    Center,
    Condition,
    ConditionLike,
    ConstantCondition,
    Function,
    PixelFunction,
    Program,
    ScoreDiff,
)


def format_function(function: Function) -> str:
    if isinstance(function, PixelFunction):
        return f"{function.kind.value}({function.pixel.value})"
    if isinstance(function, ScoreDiff):
        return "score_diff(N(x), N(x[l<-p]), c_x)"
    if isinstance(function, Center):
        return "center(l)"
    raise TypeError(f"unknown function node {function!r}")


def format_constant(value: float) -> str:
    """Render a threshold so parsing it back yields the *exact* float.

    Prefers the compact ``%g`` form (``8``, ``0.19``) when it survives a
    round trip; otherwise falls back to ``repr``, which is Python's
    shortest exact representation.  This is what makes
    ``parse(print(program)) == program`` hold bit-for-bit over the whole
    search space (pinned by the testkit's property-based round-trip
    tests), not just for nicely-rounded constants.
    """
    compact = f"{value:g}"
    if float(compact) == value:
        return compact
    return repr(value)


def format_condition(condition: ConditionLike) -> str:
    if isinstance(condition, ConstantCondition):
        return "true" if condition.value else "false"
    return (
        f"{format_function(condition.function)} "
        f"{condition.comparison.value} {format_constant(condition.constant.value)}"
    )


def format_program(program: Program) -> str:
    """Multi-line rendering with the paper's ``[B1]``..``[B4]`` labels."""
    lines = [
        f"[B{index + 1}] {format_condition(condition)}"
        for index, condition in enumerate(program.conditions)
    ]
    return "\n".join(lines)
