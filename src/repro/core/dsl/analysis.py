"""Static analysis of conditions over the finite perturbation domain.

Conditions over the *perturbation* pixel ``p`` are special: ``p`` ranges
over just the eight RGB-cube corners, so ``max(p)``/``min(p)``/``avg(p)``
take one of a handful of values and every such condition has an exactly
computable truth table.  That enables:

- :func:`corner_support`: the set of corners satisfying a condition;
- :func:`is_vacuous` / :func:`is_tautology`: conditions that can never /
  always fire (a vacuous ``B3``, say, silently disables eager checking --
  worth a lint before deploying a hand-written program);
- :func:`analyze_program`: a per-slot report.

Conditions over ``x[l]``, ``score_diff`` or ``center`` depend on runtime
context and are reported as ``None`` (unknown).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.core.dsl.ast import (
    Avg,
    Comparison,
    Condition,
    ConditionLike,
    ConstantCondition,
    Max,
    Min,
    PixelRef,
    Program,
)
from repro.core.geometry import NUM_CORNERS, RGB_CORNERS

ALL_CORNERS: FrozenSet[int] = frozenset(range(NUM_CORNERS))


def _perturbation_value(condition: Condition, corner: int) -> Optional[float]:
    """The value of the condition's function at a given corner, if static."""
    function = condition.function
    if not isinstance(function, (Max, Min, Avg)):
        return None
    if function.pixel is not PixelRef.PERTURBATION:
        return None
    pixel = RGB_CORNERS[corner]
    if isinstance(function, Max):
        return float(pixel.max())
    if isinstance(function, Min):
        return float(pixel.min())
    return float(pixel.mean())


def corner_support(condition: ConditionLike) -> Optional[FrozenSet[int]]:
    """Corners on which the condition holds, or ``None`` if context-dependent.

    Literals are static too: ``true`` has full support, ``false`` empty.
    """
    if isinstance(condition, ConstantCondition):
        return ALL_CORNERS if condition.value else frozenset()
    satisfied = set()
    for corner in range(NUM_CORNERS):
        value = _perturbation_value(condition, corner)
        if value is None:
            return None
        if condition.comparison is Comparison.GT:
            holds = value > condition.constant.value
        else:
            holds = value < condition.constant.value
        if holds:
            satisfied.add(corner)
    return frozenset(satisfied)


def is_vacuous(condition: ConditionLike) -> Optional[bool]:
    """True if the condition can never fire (``None`` when unknown)."""
    support = corner_support(condition)
    if support is None:
        return None
    return not support


def is_tautology(condition: ConditionLike) -> Optional[bool]:
    """True if the condition always fires (``None`` when unknown)."""
    support = corner_support(condition)
    if support is None:
        return None
    return support == ALL_CORNERS


@dataclass(frozen=True)
class SlotAnalysis:
    """The static verdict for one condition slot."""

    slot: str
    support: Optional[FrozenSet[int]]  # None = context-dependent

    @property
    def verdict(self) -> str:
        if self.support is None:
            return "context-dependent"
        if not self.support:
            return "vacuous (never fires)"
        if self.support == ALL_CORNERS:
            return "tautology (always fires)"
        return f"fires on {len(self.support)}/8 corners"


def analyze_program(program: Program) -> List[SlotAnalysis]:
    """Per-slot static analysis of a program's conditions."""
    return [
        SlotAnalysis(slot=f"b{index + 1}", support=corner_support(condition))
        for index, condition in enumerate(program.conditions)
    ]


def lint_program(program: Program) -> List[str]:
    """Human-readable warnings about statically degenerate conditions.

    A vacuous ``B1``/``B2`` disables the push-back reordering entirely;
    a tautological ``B3``/``B4`` turns the eager front-check into an
    unconditional flood-fill (still complete, but the prioritization the
    paper synthesizes is gone).
    """
    warnings: List[str] = []
    for analysis in analyze_program(program):
        if analysis.support is None:
            continue
        if not analysis.support:
            warnings.append(
                f"{analysis.slot} is vacuous: its reordering never activates"
            )
        elif analysis.support == ALL_CORNERS:
            warnings.append(
                f"{analysis.slot} is a tautology: its reordering always activates"
            )
    return warnings
