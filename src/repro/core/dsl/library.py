"""A small library of notable condition programs.

These named programs anchor documentation, tests and sanity baselines:

- :func:`paper_example_program` -- the worked example of Section 3.2;
- :func:`fixed_program` -- the Sketch+False ablation baseline;
- :func:`eager_locality_program` -- a hand-written program encoding the
  Vargas & Su locality insight directly (eagerly explore neighbours of
  near-miss pairs), useful as an interpretable reference point for what
  the synthesizer should at least match.
"""

from __future__ import annotations

from repro.core.dsl.ast import (
    Center,
    Comparison,
    Condition,
    Constant,
    Max,
    PixelRef,
    Program,
    ScoreDiff,
)


def paper_example_program() -> Program:
    """The four conditions shown in Section 3.2 of the paper."""
    return Program(
        Condition(Comparison.LT, ScoreDiff(), Constant(0.21)),
        Condition(Comparison.GT, Max(PixelRef.ORIGINAL), Constant(0.19)),
        Condition(Comparison.GT, ScoreDiff(), Constant(0.25)),
        Condition(Comparison.LT, Center(), Constant(8.0)),
    )


def fixed_program() -> Program:
    """All conditions False: the fixed-prioritization baseline."""
    return Program.constant(False)


def eager_locality_program(
    push_back_below: float = 0.02, eager_above: float = 0.1
) -> Program:
    """Locality-driven reordering with explicit thresholds.

    ``B1``: a pair that barely moved the confidence (drop below
    ``push_back_below``) is in a dead region -- defer its neighbours.
    ``B3``: a pair that dented the confidence (drop above ``eager_above``)
    is near a vulnerable region -- eagerly check its neighbours.
    ``B2``/``B4`` stay inactive (``False``-like via impossible bounds are
    avoided; instead the natural encodings below are self-documenting).
    """
    return Program(
        Condition(Comparison.LT, ScoreDiff(), Constant(push_back_below)),
        Condition(Comparison.LT, ScoreDiff(), Constant(push_back_below)),
        Condition(Comparison.GT, ScoreDiff(), Constant(eager_above)),
        Condition(Comparison.GT, ScoreDiff(), Constant(eager_above)),
    )
