"""The paper's contribution: sketch, condition DSL, and synthesizer."""

from repro.core.geometry import (
    RGB_CORNERS,
    center_distance,
    corner_ranking,
    location_distance,
    pixel_distance,
)
from repro.core.pairs import Pair
from repro.core.pairqueue import PairQueue
from repro.core.sketch import OnePixelSketch, SketchResult
from repro.core.stepping import (
    Query,
    StepCounter,
    drive_steps,
    threaded_steps,
)

__all__ = [
    "Query",
    "StepCounter",
    "drive_steps",
    "threaded_steps",
    "RGB_CORNERS",
    "pixel_distance",
    "location_distance",
    "corner_ranking",
    "center_distance",
    "Pair",
    "PairQueue",
    "OnePixelSketch",
    "SketchResult",
]
