"""The paper's contribution: sketch, condition DSL, and synthesizer."""

from repro.core.geometry import (
    RGB_CORNERS,
    center_distance,
    corner_ranking,
    location_distance,
    pixel_distance,
)
from repro.core.pairs import Pair
from repro.core.pairqueue import PairQueue
from repro.core.sketch import OnePixelSketch, SketchResult

__all__ = [
    "RGB_CORNERS",
    "pixel_distance",
    "location_distance",
    "corner_ranking",
    "center_distance",
    "Pair",
    "PairQueue",
    "OnePixelSketch",
    "SketchResult",
]
