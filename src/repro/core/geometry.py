"""Distance metrics and the RGB-corner perturbation space (Section 3.1).

The paper adopts Sparse-RS's insight that almost all successful one-pixel
adversarial examples use a perturbation at one of the eight corners of the
RGB color cube, so the perturbation space is ``{0, 1}^3`` per location.

Two metrics order the space:

- location distance: ``Linf`` over the (row, col) grid;
- pixel distance: ``L1`` over RGB values.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: The eight corners of the RGB cube, indexed 0..7; corner ``k`` has
#: channel ``c`` equal to bit ``c`` of ``k`` (r = bit 0, g = bit 1, b = bit 2).
RGB_CORNERS = np.array(
    [[(k >> 0) & 1, (k >> 1) & 1, (k >> 2) & 1] for k in range(8)],
    dtype=np.float64,
)

NUM_CORNERS = 8


def pixel_distance(p1: np.ndarray, p2: np.ndarray) -> float:
    """L1 distance between two RGB pixels."""
    p1 = np.asarray(p1, dtype=np.float64)
    p2 = np.asarray(p2, dtype=np.float64)
    if p1.shape != (3,) or p2.shape != (3,):
        raise ValueError("pixels must be RGB triples")
    return float(np.abs(p1 - p2).sum())


def location_distance(l1: Tuple[int, int], l2: Tuple[int, int]) -> int:
    """Linf (Chebyshev) distance between two pixel locations."""
    return max(abs(l1[0] - l2[0]), abs(l1[1] - l2[1]))


def corner_distances(pixel: np.ndarray) -> np.ndarray:
    """L1 distance from ``pixel`` to each of the eight RGB corners."""
    pixel = np.asarray(pixel, dtype=np.float64)
    if pixel.shape != (3,):
        raise ValueError("pixel must be an RGB triple")
    return np.abs(RGB_CORNERS - pixel).sum(axis=1)


def corner_ranking(pixel: np.ndarray) -> np.ndarray:
    """Corner indices ordered from farthest to closest to ``pixel``.

    Position ``r`` of the result is the index of the ``r``-th farthest
    corner (ties broken by corner index, so the ranking is deterministic).
    """
    distances = corner_distances(pixel)
    # argsort ascending on negated distance = descending; stable sort keeps
    # corner-index order among ties.
    return np.argsort(-distances, kind="stable")


def image_center(shape: Tuple[int, int]) -> Tuple[float, float]:
    """The (possibly fractional) center of a ``(d1, d2)`` grid."""
    d1, d2 = shape
    if d1 <= 0 or d2 <= 0:
        raise ValueError("image dimensions must be positive")
    return ((d1 - 1) / 2.0, (d2 - 1) / 2.0)


def center_distance(location: Tuple[int, int], shape: Tuple[int, int]) -> float:
    """Linf distance of ``location`` from the image center.

    This is the quantity the DSL's ``center(l)`` function computes.
    """
    ci, cj = image_center(shape)
    return max(abs(location[0] - ci), abs(location[1] - cj))


def max_center_distance(shape: Tuple[int, int]) -> float:
    """The largest value :func:`center_distance` can take on ``shape``."""
    ci, cj = image_center(shape)
    return max(ci, cj)
