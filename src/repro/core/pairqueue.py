"""The priority queue of location-perturbation pairs.

The sketch needs four operations on the queue ``L``:

- ``pop``: take the front pair;
- ``remove``: delete an arbitrary pair (eager front-checking);
- ``push_back``: move a pair that is already queued to the back;
- ``first_at_location``: the *next* pair in queue order at a given
  location (the "closest pair with respect to the perturbation").

The implementation is a lazy-deletion binary heap over monotonically
increasing insertion stamps: ``pop`` and ``push_back`` are O(log n),
``remove`` is O(1), and ``first_at_location`` is O(8) because at most
eight pairs share a location.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.pairs import Pair


class PairQueue:
    """An ordered multiset of :class:`Pair` with reordering support."""

    def __init__(self, ordered_pairs: Iterable[Pair]):
        self._stamp: Dict[Pair, int] = {}
        self._heap: List[Tuple[int, Pair]] = []
        self._by_location: Dict[Tuple[int, int], Set[int]] = {}
        counter = 0
        for pair in ordered_pairs:
            if pair in self._stamp:
                raise ValueError(f"duplicate pair {pair}")
            self._stamp[pair] = counter
            self._heap.append((counter, pair))
            self._by_location.setdefault(pair.location, set()).add(pair.corner)
            counter += 1
        self._counter = counter
        # the input is already sorted by construction, so the list is a heap

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._stamp)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._stamp

    def __bool__(self) -> bool:
        return bool(self._stamp)

    def corners_at(self, location: Tuple[int, int]) -> Set[int]:
        """Corner indices still queued at ``location`` (a copy)."""
        return set(self._by_location.get(location, ()))

    def first_at_location(self, location: Tuple[int, int]) -> Optional[Pair]:
        """The earliest-queued pair at ``location``, or ``None``.

        This realizes the paper's "closest pair with respect to the
        perturbation": the next pair in ``L`` whose location is ``l``.
        """
        corners = self._by_location.get(location)
        if not corners:
            return None
        best_pair = None
        best_stamp = None
        for corner in corners:
            pair = Pair(location[0], location[1], corner)
            stamp = self._stamp[pair]
            if best_stamp is None or stamp < best_stamp:
                best_stamp = stamp
                best_pair = pair
        return best_pair

    def to_list(self) -> List[Pair]:
        """All queued pairs in queue order (O(n log n); for inspection)."""
        return [pair for _, pair in sorted((self._stamp[p], p) for p in self._stamp)]

    def peek(self, count: int) -> List[Pair]:
        """The next ``count`` pairs in pop order, without removing them.

        Batched stepping uses this to speculate on upcoming queue
        entries.  Works on a copy of the heap with the same lazy-deletion
        filter as :meth:`pop`, so stale entries are skipped but remain
        in the real heap.
        """
        heap = list(self._heap)
        front: List[Pair] = []
        while heap and len(front) < count:
            stamp, pair = heapq.heappop(heap)
            if self._stamp.get(pair) == stamp:
                front.append(pair)
        return front

    # -- mutations ---------------------------------------------------------------

    def pop(self) -> Pair:
        """Remove and return the front pair."""
        while self._heap:
            stamp, pair = heapq.heappop(self._heap)
            if self._stamp.get(pair) == stamp:
                self._forget(pair)
                return pair
        raise IndexError("pop from empty PairQueue")

    def remove(self, pair: Pair) -> None:
        """Delete ``pair`` from the queue (it must be present)."""
        if pair not in self._stamp:
            raise KeyError(f"{pair} not in queue")
        self._forget(pair)

    def push_back(self, pair: Pair) -> None:
        """Move an already-queued ``pair`` to the back of the queue."""
        if pair not in self._stamp:
            raise KeyError(f"{pair} not in queue")
        self._stamp[pair] = self._counter
        heapq.heappush(self._heap, (self._counter, pair))
        self._counter += 1

    def _forget(self, pair: Pair) -> None:
        del self._stamp[pair]
        corners = self._by_location[pair.location]
        corners.discard(pair.corner)
        if not corners:
            del self._by_location[pair.location]
