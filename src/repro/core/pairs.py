"""Location-perturbation pairs, the atoms of the sketch's search space.

A candidate adversarial example is fully described by *where* to perturb
(a pixel location) and *what value* to write (one of the eight RGB-cube
corners, referenced by index so pairs stay hashable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.core.geometry import NUM_CORNERS, RGB_CORNERS


@dataclass(frozen=True, order=True)
class Pair:
    """An immutable (location, corner) pair.

    ``corner`` indexes :data:`repro.core.geometry.RGB_CORNERS`; the actual
    RGB perturbation value is :attr:`perturbation`.
    """

    row: int
    col: int
    corner: int

    def __post_init__(self):
        if not 0 <= self.corner < NUM_CORNERS:
            raise ValueError(f"corner index must be in [0, 8), got {self.corner}")
        if self.row < 0 or self.col < 0:
            raise ValueError("location indices must be non-negative")

    @property
    def location(self) -> Tuple[int, int]:
        return (self.row, self.col)

    @property
    def perturbation(self) -> np.ndarray:
        """The RGB value this pair writes at its location."""
        return RGB_CORNERS[self.corner]

    def apply(self, image: np.ndarray) -> np.ndarray:
        """Return ``image[l <- p]``: a copy with this pair's pixel written."""
        if self.row >= image.shape[0] or self.col >= image.shape[1]:
            raise ValueError(
                f"pair location {self.location} outside image {image.shape[:2]}"
            )
        perturbed = image.copy()
        perturbed[self.row, self.col] = self.perturbation
        return perturbed


def all_pairs(shape: Tuple[int, int]) -> Iterator[Pair]:
    """Every (location, corner) pair of a ``(d1, d2)`` image, row-major."""
    d1, d2 = shape
    for row in range(d1):
        for col in range(d2):
            for corner in range(NUM_CORNERS):
                yield Pair(row, col, corner)


def location_neighbors(pair: Pair, shape: Tuple[int, int]) -> List[Pair]:
    """The closest pairs w.r.t. location: Linf distance 1, same perturbation.

    These are the (up to eight) spatial neighbours of ``pair``'s location,
    carrying the identical corner perturbation, clipped to the image.
    """
    d1, d2 = shape
    neighbors = []
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            if di == 0 and dj == 0:
                continue
            row, col = pair.row + di, pair.col + dj
            if 0 <= row < d1 and 0 <= col < d2:
                neighbors.append(Pair(row, col, pair.corner))
    return neighbors
