"""Execution statistics for sketch runs.

The ablation (Table 2) shows *that* synthesized conditions help; this
instrumentation shows *how*: how often each condition fired, how many
pairs were pushed back versus eagerly checked, and what fraction of
queries the eager front-checking contributed.  Attach a
:class:`SketchStats` to :meth:`OnePixelSketch.attack` via the ``stats``
parameter to collect them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SketchStats:
    """Counters collected during one (or more) sketch runs."""

    main_loop_pops: int = 0
    eager_checks: int = 0
    pushed_back_location: int = 0
    pushed_back_perturbation: int = 0
    condition_fired: Dict[str, int] = field(
        default_factory=lambda: {"b1": 0, "b2": 0, "b3": 0, "b4": 0}
    )
    condition_evaluated: Dict[str, int] = field(
        default_factory=lambda: {"b1": 0, "b2": 0, "b3": 0, "b4": 0}
    )

    def record_condition(self, name: str, fired: bool) -> None:
        self.condition_evaluated[name] += 1
        if fired:
            self.condition_fired[name] += 1

    def fire_rate(self, name: str) -> float:
        """Fraction of evaluations of condition ``name`` that were true."""
        evaluated = self.condition_evaluated[name]
        if evaluated == 0:
            return 0.0
        return self.condition_fired[name] / evaluated

    @property
    def total_queries(self) -> int:
        return self.main_loop_pops + self.eager_checks

    @property
    def eager_fraction(self) -> float:
        """Share of queries driven by the eager front-checking."""
        total = self.total_queries
        if total == 0:
            return 0.0
        return self.eager_checks / total

    def merge(self, other: "SketchStats") -> "SketchStats":
        """Accumulate another run's counters into this one."""
        self.main_loop_pops += other.main_loop_pops
        self.eager_checks += other.eager_checks
        self.pushed_back_location += other.pushed_back_location
        self.pushed_back_perturbation += other.pushed_back_perturbation
        for name in self.condition_fired:
            self.condition_fired[name] += other.condition_fired[name]
            self.condition_evaluated[name] += other.condition_evaluated[name]
        return self

    def to_dict(self) -> dict:
        """JSON-safe counters for run logs and result collection.

        Every value is a plain int/float (rates are always finite), so
        the dict can go straight into a
        :class:`~repro.runtime.events.RunLog` event or a results file.
        """
        return {
            "main_loop_pops": self.main_loop_pops,
            "eager_checks": self.eager_checks,
            "total_queries": self.total_queries,
            "eager_fraction": self.eager_fraction,
            "pushed_back_location": self.pushed_back_location,
            "pushed_back_perturbation": self.pushed_back_perturbation,
            "condition_fired": dict(self.condition_fired),
            "condition_evaluated": dict(self.condition_evaluated),
            "fire_rates": {
                name: self.fire_rate(name) for name in self.condition_fired
            },
        }

    def summary(self) -> str:
        lines = [
            f"queries: {self.total_queries} "
            f"(main loop {self.main_loop_pops}, eager {self.eager_checks}, "
            f"eager fraction {self.eager_fraction:.1%})",
            f"pushed back: {self.pushed_back_location} by location, "
            f"{self.pushed_back_perturbation} by perturbation",
        ]
        for name in ("b1", "b2", "b3", "b4"):
            lines.append(
                f"{name.upper()}: fired {self.condition_fired[name]}"
                f"/{self.condition_evaluated[name]}"
                f" ({self.fire_rate(name):.1%})"
            )
        return "\n".join(lines)
