"""The initial ordering of the pair queue (Appendix A).

The queue starts with all ``8 * d1 * d2`` pairs, sorted by:

1. *primary*: the per-location rank of the corner by descending L1
   distance from the image's original pixel there -- the first
   ``d1 * d2`` pairs carry each location's farthest corner, the next
   ``d1 * d2`` the second farthest, and so on;
2. *secondary*: ascending Linf distance of the location from the image
   center (center-out);
3. deterministic tie-breaks: row-major location order, then corner index.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.geometry import NUM_CORNERS, image_center
from repro.core.pairs import Pair


def initial_order(image: np.ndarray) -> List[Pair]:
    """The sketch's initial queue contents for ``image`` (H, W, 3)."""
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"image must be (H, W, 3), got {image.shape}")
    d1, d2 = image.shape[:2]
    ci, cj = image_center((d1, d2))

    rows = np.arange(d1)[:, None] * np.ones((1, d2), dtype=int)
    cols = np.arange(d2)[None, :] * np.ones((d1, 1), dtype=int)
    center_dist = np.maximum(np.abs(rows - ci), np.abs(cols - cj))

    # (d1, d2, 8) L1 distances from each original pixel to each corner,
    # then per-location descending rank of each corner.
    corners = np.array(
        [[(k >> 0) & 1, (k >> 1) & 1, (k >> 2) & 1] for k in range(NUM_CORNERS)],
        dtype=np.float64,
    )
    distances = np.abs(image[:, :, None, :] - corners[None, None, :, :]).sum(axis=3)
    order_by_distance = np.argsort(-distances, axis=2, kind="stable")
    rank = np.empty_like(order_by_distance)
    ranks_range = np.arange(NUM_CORNERS)
    np.put_along_axis(rank, order_by_distance, ranks_range[None, None, :], axis=2)

    # sort keys: (rank, center distance, row, col, corner)
    rank_flat = rank.reshape(-1)
    rows3 = np.repeat(rows.reshape(-1), NUM_CORNERS)
    cols3 = np.repeat(cols.reshape(-1), NUM_CORNERS)
    center3 = np.repeat(center_dist.reshape(-1), NUM_CORNERS)
    corner3 = np.tile(ranks_range, d1 * d2)
    order = np.lexsort((corner3, cols3, rows3, center3, rank_flat))
    return [
        Pair(int(rows3[index]), int(cols3[index]), int(corner3[index]))
        for index in order
    ]
