"""Multi-restart synthesis.

A single MH chain can stall in a poor region of program space (a known
MCMC failure mode; our quickstart-scale experiments show visible
seed-to-seed variance).  Running ``R`` independent chains from different
seeds and keeping the best program trades a linear query-cost factor for
much lower variance -- the standard stochastic-search remedy, kept out of
:class:`~repro.core.synthesis.oppsla.Oppsla` so the faithful single-chain
Algorithm 2 stays pristine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Sequence

import numpy as np

from repro.core.synthesis.oppsla import Oppsla, OppslaConfig, SynthesisResult
from repro.core.synthesis.score import TrainingPair


@dataclass
class RestartSummary:
    """The best result plus every chain's outcome for inspection."""

    best: SynthesisResult
    all_results: List[SynthesisResult]

    @property
    def total_queries(self) -> int:
        return sum(result.total_queries for result in self.all_results)


def synthesize_with_restarts(
    classifier: Callable[[np.ndarray], np.ndarray],
    training_pairs: Sequence[TrainingPair],
    config: OppslaConfig = None,
    restarts: int = 3,
) -> RestartSummary:
    """Run ``restarts`` independent OPPSLA chains; keep the best program.

    Chain ``i`` uses seed ``config.seed + i``; "best" means most training
    successes, then the lowest (failure-penalized, if configured) average
    query count -- the same ordering OPPSLA itself uses.
    """
    if restarts < 1:
        raise ValueError("restarts must be at least 1")
    config = config or OppslaConfig()
    results: List[SynthesisResult] = []
    for index in range(restarts):
        chain_config = replace(config, seed=config.seed + index)
        results.append(
            Oppsla(chain_config).synthesize(classifier, training_pairs)
        )

    def quality(result: SynthesisResult):
        evaluation = result.best_evaluation
        if not evaluation.successes:
            return (0, 0.0)
        average = (
            evaluation.penalized_avg_queries
            if config.score_failures
            else evaluation.avg_queries
        )
        return (evaluation.successes, -average)

    best = max(results, key=quality)
    return RestartSummary(best=best, all_results=results)
