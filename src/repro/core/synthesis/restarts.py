"""Multi-restart synthesis.

A single MH chain can stall in a poor region of program space (a known
MCMC failure mode; our quickstart-scale experiments show visible
seed-to-seed variance).  Running ``R`` independent chains from different
seeds and keeping the best program trades a linear query-cost factor for
much lower variance -- the standard stochastic-search remedy, kept out of
:class:`~repro.core.synthesis.oppsla.Oppsla` so the faithful single-chain
Algorithm 2 stays pristine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, List, Sequence

import numpy as np

from repro.core.synthesis.oppsla import Oppsla, OppslaConfig, SynthesisResult
from repro.core.synthesis.score import TrainingPair


@dataclass
class RestartSummary:
    """The best result plus every chain's outcome for inspection."""

    best: SynthesisResult
    all_results: List[SynthesisResult]

    @property
    def total_queries(self) -> int:
        return sum(result.total_queries for result in self.all_results)


def synthesize_with_restarts(
    classifier: Callable[[np.ndarray], np.ndarray],
    training_pairs: Sequence[TrainingPair],
    config: OppslaConfig = None,
    restarts: int = 3,
    checkpoint_dir: str = None,
    resume: bool = False,
    checkpoint_interval: int = 10,
) -> RestartSummary:
    """Run ``restarts`` independent OPPSLA chains; keep the best program.

    Chain ``i`` uses seed ``config.seed + i``; "best" means most training
    successes, then the lowest (failure-penalized, if configured) average
    query count -- the same ordering OPPSLA itself uses.

    ``checkpoint_dir`` gives each chain its own durable checkpoint under
    ``checkpoint_dir/chain-<i>``.  With ``resume=True`` a killed restart
    sweep picks up where it died: chains that already ran to their final
    snapshot restore instantly (zero queries re-posed), and the chain
    that was interrupted mid-run continues bit-identically from its last
    snapshot.
    """
    if restarts < 1:
        raise ValueError("restarts must be at least 1")
    config = config or OppslaConfig()
    results: List[SynthesisResult] = []
    for index in range(restarts):
        chain_config = replace(config, seed=config.seed + index)
        chain_checkpoint = (
            os.path.join(checkpoint_dir, f"chain-{index}")
            if checkpoint_dir is not None
            else None
        )
        results.append(
            Oppsla(chain_config).synthesize(
                classifier,
                training_pairs,
                checkpoint=chain_checkpoint,
                resume=resume,
                checkpoint_interval=checkpoint_interval,
            )
        )

    def quality(result: SynthesisResult):
        evaluation = result.best_evaluation
        if not evaluation.successes:
            return (0, 0.0)
        average = (
            evaluation.penalized_avg_queries
            if config.score_failures
            else evaluation.avg_queries
        )
        return (evaluation.successes, -average)

    best = max(results, key=quality)
    return RestartSummary(best=best, all_results=results)
