"""The Metropolis-Hastings-style stochastic search (Section 4).

The chain walks over well-typed programs: each step proposes a tree
mutation of the current program and accepts it with probability
``min(1, S(P')/S(P))`` (implemented, as in Algorithm 2, by comparing a
uniform sample against the score ratio).  A proposal whose score is zero
(the program never succeeded on the training set) is accepted only from
an equally-scoreless state, which lets the chain escape a bad random
initialization without ever abandoning a working program for a broken
one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.dsl.ast import Program
from repro.core.dsl.grammar import Grammar
from repro.core.dsl.mutation import mutate_program
from repro.core.synthesis.score import ProgramEvaluation, score
from repro.core.synthesis.trace import AcceptedProgram, SynthesisTrace

Evaluator = Callable[[Program], ProgramEvaluation]

#: Record kind chain snapshots use inside a checkpoint store.
CHAIN_SNAPSHOT = "chain_snapshot"


@dataclass
class ChainState:
    """The chain's current position."""

    program: Program
    evaluation: ProgramEvaluation
    score: float


def _encode_evaluation(evaluation: ProgramEvaluation) -> Dict:
    from repro.runtime.checkpoint import encode_sketch_result

    return {
        "avg_queries": None if math.isinf(evaluation.avg_queries)
        else evaluation.avg_queries,
        "successes": evaluation.successes,
        "total_images": evaluation.total_images,
        "total_queries": evaluation.total_queries,
        "results": [encode_sketch_result(r) for r in evaluation.results],
    }


def _decode_evaluation(payload: Dict) -> ProgramEvaluation:
    from repro.runtime.checkpoint import decode_sketch_result

    avg = payload["avg_queries"]
    return ProgramEvaluation(
        avg_queries=math.inf if avg is None else avg,
        successes=payload["successes"],
        total_images=payload["total_images"],
        total_queries=payload["total_queries"],
        results=tuple(decode_sketch_result(r) for r in payload["results"]),
    )


def encode_chain_snapshot(
    iteration: int,
    state: ChainState,
    trace: SynthesisTrace,
    rng: np.random.Generator,
) -> Dict:
    """One durable record capturing everything :meth:`run` needs to resume.

    The snapshot is self-contained -- chain position, full trace
    (accepted-program pool included), and the RNG's bit-generator state
    -- so resuming from it replays the remaining iterations with the
    exact proposal and accept-decision stream of an uninterrupted run.
    Per-image ``adversarial_image`` arrays are the only thing dropped
    (see :func:`repro.runtime.checkpoint.encode_sketch_result`).
    """
    from repro.runtime.checkpoint import encode_rng_state

    return {
        "kind": CHAIN_SNAPSHOT,
        "iteration": iteration,
        "state": {
            "program": state.program.to_dict(),
            "evaluation": _encode_evaluation(state.evaluation),
            "score": state.score,
        },
        "trace": {
            "iterations": trace.iterations,
            "total_queries": trace.total_queries,
            "proposals_accepted": trace.proposals_accepted,
            "proposals_rejected": trace.proposals_rejected,
            "accepted": [
                {
                    "iteration": entry.iteration,
                    "program": entry.program.to_dict(),
                    "evaluation": _encode_evaluation(entry.evaluation),
                    "cumulative_queries": entry.cumulative_queries,
                }
                for entry in trace.accepted
            ],
        },
        "rng": encode_rng_state(rng),
    }


def decode_chain_snapshot(
    payload: Dict,
) -> Tuple[int, ChainState, SynthesisTrace, Dict]:
    """``(iteration, state, trace, rng_state)`` from one snapshot record."""
    state_payload = payload["state"]
    state = ChainState(
        program=Program.from_dict(state_payload["program"]),
        evaluation=_decode_evaluation(state_payload["evaluation"]),
        score=state_payload["score"],
    )
    trace_payload = payload["trace"]
    trace = SynthesisTrace(
        accepted=[
            AcceptedProgram(
                iteration=entry["iteration"],
                program=Program.from_dict(entry["program"]),
                evaluation=_decode_evaluation(entry["evaluation"]),
                cumulative_queries=entry["cumulative_queries"],
            )
            for entry in trace_payload["accepted"]
        ],
        iterations=trace_payload["iterations"],
        total_queries=trace_payload["total_queries"],
        proposals_accepted=trace_payload["proposals_accepted"],
        proposals_rejected=trace_payload["proposals_rejected"],
    )
    return int(payload["iteration"]), state, trace, payload["rng"]


def latest_chain_snapshot(store) -> Optional[Dict]:
    """The last complete snapshot in a store, or ``None``.

    A torn tail line (crash mid-snapshot) is skipped by the store's
    reader, which automatically falls back to the previous complete
    snapshot -- the write-ahead property that makes checkpointing itself
    crash-safe.
    """
    records, _truncated = store.records()
    snapshot = None
    for record in records:
        if record.get("kind") == CHAIN_SNAPSHOT:
            snapshot = record
    return snapshot


class MetropolisHastings:
    """A reusable MH driver over the condition grammar.

    Parameters
    ----------
    grammar:
        Defines the proposal distribution (typed mutations).
    evaluate:
        Maps a program to its measured training behaviour; this is where
        all classifier queries happen.
    beta:
        Score temperature: larger values make the chain greedier.
    rng:
        Randomness source for proposals and accept decisions.
    score_failures:
        Score with the failure-penalized average (recommended whenever
        candidate evaluation runs under a per-image budget; see
        :meth:`ProgramEvaluation.penalized_avg_queries`).
    """

    def __init__(
        self,
        grammar: Grammar,
        evaluate: Evaluator,
        beta: float,
        rng: np.random.Generator,
        score_failures: bool = False,
    ):
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.grammar = grammar
        self.evaluate = evaluate
        self.beta = beta
        self.rng = rng
        self.score_failures = score_failures

    def _score(self, evaluation: ProgramEvaluation) -> float:
        return score(evaluation, self.beta, include_failures=self.score_failures)

    def accept_probability(self, current: float, proposed: float) -> float:
        """``min(1, S'/S)`` with the zero-score edge cases made explicit."""
        if current == 0.0:
            return 1.0 if proposed >= current else 0.0
        return min(1.0, proposed / current)

    def run(
        self,
        max_iterations: int,
        initial: Optional[Program] = None,
        trace: Optional[SynthesisTrace] = None,
        query_budget: Optional[int] = None,
        checkpoint=None,
        checkpoint_interval: int = 10,
        resume: bool = False,
    ) -> "tuple[ChainState, SynthesisTrace]":
        """Run the chain for ``max_iterations`` proposals.

        ``query_budget`` optionally stops the search once the cumulative
        classifier queries exceed it (checked between iterations), which
        models the paper's synthesis-cost cap (Section 5, 10^6 queries).

        ``checkpoint`` (a
        :class:`~repro.runtime.checkpoint.CheckpointStore`) durably
        snapshots the chain every ``checkpoint_interval`` iterations and
        at the end of the run.  With ``resume=True`` the chain restores
        the latest complete snapshot -- position, trace, and RNG state --
        and continues exactly where it died: the accepted-program
        sequence of a resumed run is bit-identical to an uninterrupted
        one, because every proposal and accept decision replays from the
        restored bit-generator state.  A crash *between* snapshots only
        re-runs the iterations since the last one, reproducing the same
        chain.
        """
        if max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        if checkpoint is not None and checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")

        state = None
        completed = 0
        if checkpoint is not None and resume:
            snapshot = latest_chain_snapshot(checkpoint)
            if snapshot is not None:
                from repro.runtime.checkpoint import restore_rng_state

                completed, state, trace, rng_state = decode_chain_snapshot(
                    snapshot
                )
                restore_rng_state(self.rng, rng_state)

        if state is None:
            trace = trace if trace is not None else SynthesisTrace()
            program = (
                initial if initial is not None
                else self.grammar.random_program(self.rng)
            )
            evaluation = self.evaluate(program)
            trace.total_queries += evaluation.total_queries
            state = ChainState(program, evaluation, self._score(evaluation))
            trace.record_accept(0, program, evaluation)
            if checkpoint is not None:
                checkpoint.append(encode_chain_snapshot(0, state, trace, self.rng))

        snapshotted = completed
        for iteration in range(completed + 1, max_iterations + 1):
            if query_budget is not None and trace.total_queries >= query_budget:
                break
            proposal = mutate_program(state.program, self.grammar, self.rng)
            proposal_eval = self.evaluate(proposal)
            trace.total_queries += proposal_eval.total_queries
            trace.iterations = iteration
            proposal_score = self._score(proposal_eval)
            threshold = self.accept_probability(state.score, proposal_score)
            if self.rng.uniform(0.0, 1.0) < threshold:
                state = ChainState(proposal, proposal_eval, proposal_score)
                trace.proposals_accepted += 1
                trace.record_accept(iteration, proposal, proposal_eval)
            else:
                trace.proposals_rejected += 1
            completed = iteration
            if checkpoint is not None and iteration % checkpoint_interval == 0:
                checkpoint.append(
                    encode_chain_snapshot(iteration, state, trace, self.rng)
                )
                snapshotted = iteration
        if checkpoint is not None and snapshotted != completed:
            checkpoint.append(
                encode_chain_snapshot(completed, state, trace, self.rng)
            )
        return state, trace
