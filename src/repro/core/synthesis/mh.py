"""The Metropolis-Hastings-style stochastic search (Section 4).

The chain walks over well-typed programs: each step proposes a tree
mutation of the current program and accepts it with probability
``min(1, S(P')/S(P))`` (implemented, as in Algorithm 2, by comparing a
uniform sample against the score ratio).  A proposal whose score is zero
(the program never succeeded on the training set) is accepted only from
an equally-scoreless state, which lets the chain escape a bad random
initialization without ever abandoning a working program for a broken
one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.dsl.ast import Program
from repro.core.dsl.grammar import Grammar
from repro.core.dsl.mutation import mutate_program
from repro.core.synthesis.score import ProgramEvaluation, score
from repro.core.synthesis.trace import SynthesisTrace

Evaluator = Callable[[Program], ProgramEvaluation]


@dataclass
class ChainState:
    """The chain's current position."""

    program: Program
    evaluation: ProgramEvaluation
    score: float


class MetropolisHastings:
    """A reusable MH driver over the condition grammar.

    Parameters
    ----------
    grammar:
        Defines the proposal distribution (typed mutations).
    evaluate:
        Maps a program to its measured training behaviour; this is where
        all classifier queries happen.
    beta:
        Score temperature: larger values make the chain greedier.
    rng:
        Randomness source for proposals and accept decisions.
    score_failures:
        Score with the failure-penalized average (recommended whenever
        candidate evaluation runs under a per-image budget; see
        :meth:`ProgramEvaluation.penalized_avg_queries`).
    """

    def __init__(
        self,
        grammar: Grammar,
        evaluate: Evaluator,
        beta: float,
        rng: np.random.Generator,
        score_failures: bool = False,
    ):
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.grammar = grammar
        self.evaluate = evaluate
        self.beta = beta
        self.rng = rng
        self.score_failures = score_failures

    def _score(self, evaluation: ProgramEvaluation) -> float:
        return score(evaluation, self.beta, include_failures=self.score_failures)

    def accept_probability(self, current: float, proposed: float) -> float:
        """``min(1, S'/S)`` with the zero-score edge cases made explicit."""
        if current == 0.0:
            return 1.0 if proposed >= current else 0.0
        return min(1.0, proposed / current)

    def run(
        self,
        max_iterations: int,
        initial: Optional[Program] = None,
        trace: Optional[SynthesisTrace] = None,
        query_budget: Optional[int] = None,
    ) -> "tuple[ChainState, SynthesisTrace]":
        """Run the chain for ``max_iterations`` proposals.

        ``query_budget`` optionally stops the search once the cumulative
        classifier queries exceed it (checked between iterations), which
        models the paper's synthesis-cost cap (Section 5, 10^6 queries).
        """
        if max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        trace = trace if trace is not None else SynthesisTrace()
        program = initial if initial is not None else self.grammar.random_program(self.rng)
        evaluation = self.evaluate(program)
        trace.total_queries += evaluation.total_queries
        state = ChainState(program, evaluation, self._score(evaluation))
        trace.record_accept(0, program, evaluation)

        for iteration in range(1, max_iterations + 1):
            if query_budget is not None and trace.total_queries >= query_budget:
                break
            proposal = mutate_program(state.program, self.grammar, self.rng)
            proposal_eval = self.evaluate(proposal)
            trace.total_queries += proposal_eval.total_queries
            trace.iterations = iteration
            proposal_score = self._score(proposal_eval)
            threshold = self.accept_probability(state.score, proposal_score)
            if self.rng.uniform(0.0, 1.0) < threshold:
                state = ChainState(proposal, proposal_eval, proposal_score)
                trace.proposals_accepted += 1
                trace.record_accept(iteration, proposal, proposal_eval)
            else:
                trace.proposals_rejected += 1
        return state, trace
