"""Synthesis traces: the record of a stochastic-search run.

Figure 4 of the paper plots the quality of each intermediate *accepted*
program against the cumulative number of synthesis queries posed up to
the iteration that produced it; these dataclasses carry exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.dsl.ast import Program
from repro.core.synthesis.score import ProgramEvaluation


@dataclass(frozen=True)
class AcceptedProgram:
    """One accepted candidate and the synthesis cost paid to reach it."""

    iteration: int
    program: Program
    evaluation: ProgramEvaluation
    cumulative_queries: int


@dataclass
class SynthesisTrace:
    """The full history of one search run."""

    accepted: List[AcceptedProgram] = field(default_factory=list)
    iterations: int = 0
    total_queries: int = 0
    proposals_accepted: int = 0
    proposals_rejected: int = 0

    def record_accept(
        self, iteration: int, program: Program, evaluation: ProgramEvaluation
    ) -> None:
        self.accepted.append(
            AcceptedProgram(
                iteration=iteration,
                program=program,
                evaluation=evaluation,
                cumulative_queries=self.total_queries,
            )
        )

    @property
    def acceptance_rate(self) -> float:
        total = self.proposals_accepted + self.proposals_rejected
        if total == 0:
            return 0.0
        return self.proposals_accepted / total
