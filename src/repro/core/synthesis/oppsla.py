"""OPPSLA, the top-level synthesizer (Algorithm 2).

Given a classifier and a training set of correctly-classified images,
OPPSLA runs the Metropolis-Hastings search over sketch instantiations and
returns an adversarial program.  The expensive queries all happen here,
once; afterwards the program attacks arbitrarily many images (or even, as
the transferability experiment shows, other classifiers) cheaply.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.dsl.ast import Program
from repro.core.dsl.grammar import Grammar
from repro.core.sketch import OnePixelSketch
from repro.core.synthesis.mh import MetropolisHastings
from repro.core.synthesis.score import (
    ProgramEvaluation,
    TrainingPair,
    evaluate_program,
)
from repro.core.synthesis.trace import SynthesisTrace


@dataclass(frozen=True)
class OppslaConfig:
    """Synthesis hyper-parameters.

    Attributes
    ----------
    max_iterations:
        MH proposals (the paper's MAX_ITER; 210 in Appendix C).
    beta:
        Score temperature in ``S(P) = exp(-beta * Qbar)``.
    per_image_budget:
        Cap on queries per training image during candidate evaluation;
        ``None`` lets each run exhaust the pair space (the paper's
        setting; 8 * d1 * d2 queries worst case).
    query_budget:
        Optional cap on total synthesis queries (the paper caps at 10^6).
    score_failures:
        Score candidates by the failure-penalized query average instead
        of the paper's successes-only average.  Equivalent to the paper
        when ``per_image_budget`` is ``None``; strictly safer with one
        (see :attr:`ProgramEvaluation.penalized_avg_queries`).
    seed:
        Randomness seed for the whole synthesis run.
    """

    max_iterations: int = 210
    beta: float = 0.02
    per_image_budget: Optional[int] = None
    query_budget: Optional[int] = None
    score_failures: bool = True
    seed: int = 0


@dataclass
class SynthesisResult:
    """What a synthesis run produces.

    ``final_program`` is Algorithm 2's literal return value (the last
    accepted candidate); ``best_program`` is the evaluated candidate with
    the most successes and, among those, the lowest average query count --
    the one a practitioner would deploy.  ``program`` aliases
    ``best_program``.
    """

    final_program: Program
    final_evaluation: ProgramEvaluation
    best_program: Program
    best_evaluation: ProgramEvaluation
    trace: SynthesisTrace
    config: OppslaConfig = field(default_factory=OppslaConfig)

    @property
    def program(self) -> Program:
        return self.best_program

    @property
    def total_queries(self) -> int:
        return self.trace.total_queries

    def attacker(self) -> OnePixelSketch:
        """The deployable attack for :attr:`program`."""
        return OnePixelSketch(self.program)

    def save(self, path: str) -> None:
        """Persist the synthesized programs and summary metrics as JSON."""
        payload = {
            "best_program": self.best_program.to_dict(),
            "final_program": self.final_program.to_dict(),
            "best_avg_queries": self.best_evaluation.avg_queries,
            "best_successes": self.best_evaluation.successes,
            "total_synthesis_queries": self.total_queries,
            "iterations": self.trace.iterations,
            "config": {
                "max_iterations": self.config.max_iterations,
                "beta": self.config.beta,
                "per_image_budget": self.config.per_image_budget,
                "query_budget": self.config.query_budget,
                "seed": self.config.seed,
            },
        }
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)

    @staticmethod
    def load_program(path: str) -> Program:
        """Load just the deployable program from a saved result."""
        with open(path) as handle:
            payload = json.load(handle)
        return Program.from_dict(payload["best_program"])


class Oppsla:
    """The synthesizer facade.

    Example
    -------
    >>> oppsla = Oppsla(OppslaConfig(max_iterations=20, seed=7))
    >>> result = oppsla.synthesize(classifier, training_pairs)   # doctest: +SKIP
    >>> attack = result.attacker()                               # doctest: +SKIP
    """

    def __init__(self, config: OppslaConfig = None):
        self.config = config or OppslaConfig()

    def synthesize(
        self,
        classifier: Callable[[np.ndarray], np.ndarray],
        training_pairs: Sequence[TrainingPair],
        initial: Optional[Program] = None,
        executor=None,
        checkpoint=None,
        resume: bool = False,
        checkpoint_interval: int = 10,
    ) -> SynthesisResult:
        """Synthesize an adversarial program for ``classifier``.

        ``training_pairs`` are (image, true_class) tuples; images must all
        share one shape (the grammar is typed by it).

        ``executor`` (a :class:`~repro.runtime.pool.WorkerPool`)
        parallelizes each candidate's per-image evaluation across worker
        processes.  The MH chain itself stays sequential -- each proposal
        depends on the previous accept decision -- but candidate
        evaluation dominates the cost, and its parallel aggregation is
        bit-identical to the sequential one, so the synthesized program
        and query accounting do not depend on the worker count.

        ``checkpoint`` (a
        :class:`~repro.runtime.checkpoint.CheckpointStore` or directory
        path) makes the run crash-safe: the MH chain is durably
        snapshotted every ``checkpoint_interval`` iterations, and
        ``resume=True`` continues a killed run from its latest snapshot
        with a bit-identical accepted-program sequence (the manifest pins
        the config, so resuming under different hyper-parameters raises
        :class:`~repro.runtime.checkpoint.CheckpointMismatch`).  A
        checkpoint directory holding snapshots is refused without
        ``resume=True`` rather than silently overwritten.
        """
        training_pairs = list(training_pairs)
        if not training_pairs:
            raise ValueError("training set must be non-empty")
        shape = training_pairs[0][0].shape[:2]
        for image, _ in training_pairs:
            if image.shape[:2] != shape:
                raise ValueError("all training images must share one shape")
        grammar = Grammar(shape)
        rng = np.random.default_rng(self.config.seed)

        store = None
        if checkpoint is not None:
            from repro.core.synthesis.mh import latest_chain_snapshot
            from repro.runtime.checkpoint import CheckpointError, as_store

            store = as_store(checkpoint)
            store.reconcile_manifest(
                {
                    "kind": "synthesis",
                    "seed": self.config.seed,
                    "beta": self.config.beta,
                    "max_iterations": self.config.max_iterations,
                    "per_image_budget": self.config.per_image_budget,
                    "query_budget": self.config.query_budget,
                    "score_failures": self.config.score_failures,
                    "images": len(training_pairs),
                }
            )
            if not resume and latest_chain_snapshot(store) is not None:
                raise CheckpointError(
                    f"checkpoint at {store.directory} already holds a chain; "
                    "pass resume=True to continue it (or point at a fresh "
                    "directory)"
                )

        def evaluate(program: Program) -> ProgramEvaluation:
            return evaluate_program(
                program,
                classifier,
                training_pairs,
                per_image_budget=self.config.per_image_budget,
                executor=executor,
            )

        chain = MetropolisHastings(
            grammar,
            evaluate,
            self.config.beta,
            rng,
            score_failures=self.config.score_failures,
        )
        state, trace = chain.run(
            self.config.max_iterations,
            initial=initial,
            query_budget=self.config.query_budget,
            checkpoint=store,
            checkpoint_interval=checkpoint_interval,
            resume=resume,
        )

        def quality(entry):
            evaluation = entry.evaluation
            if not evaluation.successes:
                return (0, 0.0)
            average = (
                evaluation.penalized_avg_queries
                if self.config.score_failures
                else evaluation.avg_queries
            )
            return (evaluation.successes, -average)

        best = max(trace.accepted, key=quality)
        return SynthesisResult(
            final_program=state.program,
            final_evaluation=state.evaluation,
            best_program=best.program,
            best_evaluation=best.evaluation,
            trace=trace,
            config=self.config,
        )
