"""OPPSLA: the synthesizer for the one-pixel sketch (Algorithm 2)."""

from repro.core.synthesis.mh import MetropolisHastings
from repro.core.synthesis.oppsla import Oppsla, OppslaConfig, SynthesisResult
from repro.core.synthesis.restarts import RestartSummary, synthesize_with_restarts
from repro.core.synthesis.score import ProgramEvaluation, evaluate_program, score
from repro.core.synthesis.trace import AcceptedProgram, SynthesisTrace

__all__ = [
    "Oppsla",
    "OppslaConfig",
    "SynthesisResult",
    "MetropolisHastings",
    "ProgramEvaluation",
    "evaluate_program",
    "score",
    "AcceptedProgram",
    "SynthesisTrace",
    "synthesize_with_restarts",
    "RestartSummary",
]
