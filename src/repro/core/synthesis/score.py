"""The score function of Section 4.

Executing a candidate program on the training set yields the average
number of queries over the inputs where it *succeeds* (failed inputs pose
a fixed number of queries -- the whole space, or the per-image budget --
and are excluded from the average, as in the paper).  The score is then
``S(P) = exp(-beta * Qbar_P)``: positive, monotonically decreasing in the
average query count, and maximal (1) at zero queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dsl.ast import Program
from repro.core.sketch import OnePixelSketch, SketchResult

TrainingPair = Tuple[np.ndarray, int]


@dataclass(frozen=True)
class ProgramEvaluation:
    """The measured behaviour of one program on a training set.

    Attributes
    ----------
    avg_queries:
        Mean queries over successful inputs; ``inf`` when none succeed.
    successes:
        Number of training inputs attacked successfully.
    total_images:
        Training-set size.
    total_queries:
        Queries posed over *all* inputs (successes and failures) -- the
        synthesis-cost currency of Figure 4.
    results:
        Per-input sketch results, aligned with the training set.
    """

    avg_queries: float
    successes: int
    total_images: int
    total_queries: int
    results: Tuple[SketchResult, ...]

    @property
    def success_rate(self) -> float:
        if self.total_images == 0:
            return 0.0
        return self.successes / self.total_images

    @property
    def penalized_avg_queries(self) -> float:
        """Mean queries over *all* inputs, failures at their fixed cost.

        Without a per-image budget this ranks programs identically to
        :attr:`avg_queries` (every sketch instantiation succeeds on the
        same inputs, so failures add the same constant to every
        program).  *With* a budget it closes a loophole: a program that
        pushes a borderline image past the budget would otherwise
        *improve* its successes-only average by evicting an expensive
        success, rewarding exactly the wrong behaviour.
        """
        if self.total_images == 0 or self.successes == 0:
            return math.inf
        return self.total_queries / self.total_images


def _aggregate_results(results: Sequence[SketchResult]) -> ProgramEvaluation:
    """Fold per-input sketch results into one :class:`ProgramEvaluation`."""
    success_queries = 0
    successes = 0
    total_queries = 0
    for result in results:
        total_queries += result.queries
        if result.success:
            successes += 1
            success_queries += result.queries
    avg = success_queries / successes if successes else math.inf
    return ProgramEvaluation(
        avg_queries=avg,
        successes=successes,
        total_images=len(results),
        total_queries=total_queries,
        results=tuple(results),
    )


def evaluate_program(
    program: Program,
    classifier: Callable[[np.ndarray], np.ndarray],
    training_pairs: Sequence[TrainingPair],
    per_image_budget: Optional[int] = None,
    executor=None,
) -> ProgramEvaluation:
    """Run ``program`` on every training input and aggregate query counts.

    With an ``executor`` (a :class:`~repro.runtime.pool.WorkerPool`) the
    per-image attacks fan out across worker processes; the sketch is
    deterministic per image, so the aggregated evaluation is identical
    to the sequential one.  A per-image task lost to a worker fault is
    scored as a failure at the per-image budget (0 queries when
    unbudgeted), mirroring :func:`repro.eval.runner.attack_dataset`.
    """
    if executor is not None:
        # Imported here so the synthesis core never depends on the
        # runtime package unless parallel evaluation is requested.
        from repro.runtime.tasks import PairEvaluationRunner

        runner = PairEvaluationRunner(
            program, classifier, per_image_budget=per_image_budget
        )
        outcomes = executor.map(
            runner,
            [(image, true_class) for image, true_class in training_pairs],
            task_name="evaluate_candidate",
        )
        results: List[SketchResult] = [
            outcome.value
            if outcome.ok
            else SketchResult(
                success=False,
                queries=per_image_budget if per_image_budget is not None else 0,
            )
            for outcome in outcomes
        ]
        return _aggregate_results(results)

    sketch = OnePixelSketch(program)
    results = []
    for image, true_class in training_pairs:
        results.append(
            sketch.attack(classifier, image, true_class, budget=per_image_budget)
        )
    return _aggregate_results(results)


def score(
    evaluation: ProgramEvaluation, beta: float, include_failures: bool = False
) -> float:
    """``S(P) = exp(-beta * Qbar_P)``; zero when the program never succeeds.

    ``include_failures`` switches ``Qbar`` from the paper's successes-only
    average to :attr:`ProgramEvaluation.penalized_avg_queries`; see that
    property for why this matters under per-image budgets.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    average = (
        evaluation.penalized_avg_queries
        if include_failures
        else evaluation.avg_queries
    )
    if math.isinf(average):
        return 0.0
    return math.exp(-beta * average)
