"""Evaluation context handed to DSL conditions.

Because the attack is black-box, a condition may only observe the image,
the candidate pair, and network outputs that were *already obtained*: the
clean output ``N(x)`` (known up front -- the attacker was given a
correctly-classified image) and the output ``N(x[l <- p])`` of the failed
query the sketch just posed.  Evaluating a condition therefore never costs
a query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.geometry import center_distance
from repro.core.pairs import Pair


@dataclass(frozen=True)
class EvalContext:
    """Everything a condition may inspect, for one failed pair.

    Attributes
    ----------
    image:
        The clean image ``x`` (H, W, 3).
    pair:
        The failed (location, perturbation) pair.
    clean_scores:
        ``N(x)``.
    perturbed_scores:
        ``N(x[l <- p])`` from the query the sketch just posed.
    true_class:
        ``c_x``, the class the attack must dislodge.
    """

    image: np.ndarray
    pair: Pair
    clean_scores: np.ndarray
    perturbed_scores: np.ndarray
    true_class: int

    @property
    def image_shape(self) -> Tuple[int, int]:
        return self.image.shape[:2]

    @property
    def original_pixel(self) -> np.ndarray:
        """``x_l``: the clean image's pixel at the pair's location."""
        return self.image[self.pair.row, self.pair.col]

    @property
    def perturbation(self) -> np.ndarray:
        """``p``: the RGB value the pair writes."""
        return self.pair.perturbation

    def score_diff(self) -> float:
        """``N(x)_{c_x} - N(x[l <- p])_{c_x}``: the confidence drop."""
        return float(
            self.clean_scores[self.true_class]
            - self.perturbed_scores[self.true_class]
        )

    def center(self) -> float:
        """Linf distance of the pair's location from the image center."""
        return center_distance(self.pair.location, self.image_shape)
