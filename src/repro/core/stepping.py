"""The steppable attack protocol.

An attack exposed as a *generator* decouples its search logic from how
classifier queries are executed.  The protocol is small:

- the generator **yields** :class:`Query` objects (the perturbed image to
  score, plus whether the submission counts against the paper's query
  accounting);
- the caller **sends** back the classifier's score vector;
- the generator **returns** the final result (``StopIteration.value``).

Budget enforcement and query counting live *inside* the generator (via
:class:`StepCounter`), exactly where :class:`~repro.classifier.blackbox.
CountingClassifier` sat in the direct-call formulation, so a driven
generator is bit-identical to the classic ``attack()`` call -- the only
thing that moved is who performs the forward pass.  That inversion is
what lets the serving layer coalesce queries from many concurrent
sessions into batched model evaluations (:mod:`repro.serve.broker`).

Attacks with a natural incremental structure override
:meth:`~repro.attacks.base.OnePixelAttack.steps` with a native generator;
the base class falls back to :func:`threaded_steps`, which adapts any
``attack()`` implementation by running it on a helper thread and turning
its classifier calls into yields.

Generators may also yield a :class:`QueryBatch` -- several queries
answered by one vectorized forward pass.  Batches are *speculative*:
they are posed before any of their answers have been seen, so paper
accounting moves from pose time to **consumption time**.  The generator
charges :meth:`StepCounter.charge` for each member as it actually reads
that member's answer, and notifies the batch's ``observer`` in the same
order, so the observed query stream and every count are identical to the
scalar path by construction (see DESIGN §14).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Tuple, Union

import numpy as np

from repro.classifier.blackbox import QueryBudgetExceeded, batch_scores

Classifier = Callable[[np.ndarray], np.ndarray]

#: Seconds to wait for the helper thread of :func:`threaded_steps` to
#: acknowledge a close before it is abandoned (it is a daemon thread).
_CLOSE_JOIN_TIMEOUT = 2.0


@dataclass(frozen=True)
class Query:
    """One classifier submission requested by a steppable attack.

    ``counted`` is ``False`` only for threat-model inputs the paper does
    not charge to the attacker -- e.g. the sketch scoring the clean image
    it was handed.  Executors must answer every query either way; the
    flag only drives accounting (session query counts, budgets).
    """

    image: np.ndarray
    counted: bool = True


#: Observer signature shared by drivers and batches: called as
#: ``observer(query, scores)`` once per *consumed* query.
StepObserver = Callable[["Query", np.ndarray], None]


@dataclass
class QueryBatch:
    """Several queries answered by one vectorized forward pass.

    A batch is *speculative*: the generator poses queries it has not yet
    decided to consume (upcoming queue entries, a whole DE generation),
    and the executor answers all of them at once with ``scores[i]``
    belonging to ``queries[i]``.  Because answers arrive before the
    generator has charged anything, accounting happens at consumption:

    - the driver sets :attr:`observer` **before** sending the answers
      back, so the generator can notify per consumed member;
    - the generator calls :meth:`note` exactly when it reads a member's
      answer -- after :meth:`StepCounter.charge` succeeded -- keeping the
      observed stream in scalar consumption order;
    - members whose answers are never read (budget truncation, early
      success, stale speculation) are never charged and never observed.

    ``consumed`` therefore counts how many members were actually used;
    ``len(batch) - consumed`` is the speculation waste for that batch.
    """

    queries: Tuple[Query, ...]
    consumed: int = 0
    observer: Optional[StepObserver] = None

    def __len__(self) -> int:
        return len(self.queries)

    def images(self) -> List[np.ndarray]:
        """The member images, in pose order, for a vectorized scorer."""
        return [query.image for query in self.queries]

    def note(self, query: Query, scores: np.ndarray) -> None:
        """Record the consumption of one member (in scalar order)."""
        self.consumed += 1
        if self.observer is not None:
            self.observer(query, scores)


#: What a steppable attack may yield: one query, or a speculative batch.
StepRequest = Union[Query, QueryBatch]

#: The protocol type: yields queries (or batches), receives score
#: vectors (or score matrices), returns the attack's result object.
AttackSteps = Generator[StepRequest, np.ndarray, object]


#: Process-wide escape hatch (``--scalar-steps``): when set, every
#: generator resolves its batch window to zero and the legacy
#: one-query-at-a-time protocol is emitted verbatim.
_SCALAR_OVERRIDE = False


def set_scalar_steps(enabled: bool) -> bool:
    """Force the legacy scalar stepping path process-wide.

    Returns the previous setting so callers (tests, embedders) can
    restore it.  This backs the ``--scalar-steps`` flag on the serve,
    cluster, and attack CLIs.
    """
    global _SCALAR_OVERRIDE
    previous = _SCALAR_OVERRIDE
    _SCALAR_OVERRIDE = bool(enabled)
    return previous


def scalar_steps_forced() -> bool:
    """Whether ``--scalar-steps`` is in effect for this process."""
    return _SCALAR_OVERRIDE


def resolve_batch_window(batch_size: Optional[int]) -> int:
    """Normalize a ``batch_size`` request into an effective window.

    ``None`` or ``0`` means scalar; the process-wide
    :func:`set_scalar_steps` override forces scalar regardless.  A
    window of 1 is legal (batches of one query) but pointless, so
    callers normally pass 0 instead.
    """
    if _SCALAR_OVERRIDE or batch_size is None:
        return 0
    window = int(batch_size)
    if window < 0:
        raise ValueError(f"batch_size must be >= 0, got {batch_size}")
    return window


@dataclass
class StepCounter:
    """In-generator query accounting with the classic budget semantics.

    Mirrors :class:`~repro.classifier.blackbox.CountingClassifier`: the
    check happens *before* the submission, so the ``budget + 1``-th
    counted query raises :class:`QueryBudgetExceeded` instead of being
    posed, and ``count`` equals the budget when the exception fires.
    """

    budget: Optional[int] = None
    count: int = field(default=0)

    def submit(self, image: np.ndarray) -> Query:
        """Account for one counted submission and build its query.

        Generators write ``scores = yield counter.submit(perturbed)``:
        the count is taken *before* the query executes, exactly like
        ``CountingClassifier.__call__``.
        """
        if self.budget is not None and self.count >= self.budget:
            raise QueryBudgetExceeded(self.budget)
        self.count += 1
        return Query(image)

    def charge(self) -> None:
        """Account for one *consumed* batch member.

        Identical check-then-increment to :meth:`submit`, but without
        building a query: batched generators pose speculatively and
        charge at the moment they read an answer, so the ``k``-th charge
        corresponds exactly to the ``k``-th scalar submission.  Calling
        ``charge()`` with zero allowance raises at precisely the point
        the scalar path would have stopped.
        """
        if self.budget is not None and self.count >= self.budget:
            raise QueryBudgetExceeded(self.budget)
        self.count += 1

    @property
    def allowance(self) -> Optional[int]:
        """Counted queries still permitted (``None`` when unbudgeted)."""
        if self.budget is None:
            return None
        return max(self.budget - self.count, 0)


def drive_steps(steps: AttackSteps, classifier: Classifier, observer=None):
    """Run a steppable attack to completion against a plain classifier.

    This is the thin synchronous driver ``attack()`` methods delegate to:
    every yielded query is answered immediately by ``classifier``, so
    behaviour is exactly the pre-protocol direct-call code path.

    ``observer``, if given, is called as ``observer(query, scores)``
    after each submission is answered and before the generator resumes.
    This is the trace hook :class:`repro.testkit.trace.TraceRecorder`
    uses to capture golden query traces; observers must not mutate
    either argument.

    A yielded :class:`QueryBatch` is answered by one
    :func:`~repro.classifier.blackbox.batch_scores` call.  The observer
    is installed on the batch *before* the answers are sent, and the
    generator notifies it per member as each answer is consumed -- so
    the observed stream stays in exact scalar order even though the
    forward passes were vectorized.
    """
    try:
        request = next(steps)
        while True:
            if isinstance(request, QueryBatch):
                request.observer = observer
                answers = np.asarray(
                    batch_scores(classifier, request.images()),
                    dtype=np.float64,
                )
                request = steps.send(answers)
                continue
            scores = classifier(request.image)
            if observer is not None:
                observer(request, scores)
            request = steps.send(scores)
    except StopIteration as stop:
        return stop.value


class _SessionClosed(BaseException):
    """Raised inside the helper thread when the generator is closed.

    Derives from ``BaseException`` so attack code catching ``Exception``
    (or :class:`QueryBudgetExceeded`) cannot swallow the shutdown.
    """


def threaded_steps(
    attack,
    image: np.ndarray,
    true_class: int,
    budget: Optional[int] = None,
    target_class: Optional[int] = None,
) -> AttackSteps:
    """Adapt a classic ``attack()`` implementation to the steps protocol.

    The attack runs on a daemon helper thread against a channel-backed
    classifier: each classifier call is forwarded to the consuming side
    as a yielded :class:`Query` and blocks until the answer is sent back.
    Query counting stays wherever the attack put it (its own
    ``CountingClassifier``), so results are bit-identical to a direct
    call; the adapter never counts anything itself.

    Closing the generator early injects :class:`_SessionClosed` into the
    pending classifier call so the helper thread unwinds promptly.
    """
    requests: "queue.SimpleQueue" = queue.SimpleQueue()
    responses: "queue.SimpleQueue" = queue.SimpleQueue()

    def channel_classifier(img: np.ndarray) -> np.ndarray:
        requests.put(("query", img))
        kind, value = responses.get()
        if kind == "close":
            raise _SessionClosed()
        return value

    def run() -> None:
        try:
            result = attack.attack(
                channel_classifier,
                image,
                true_class,
                budget=budget,
                target_class=target_class,
            )
        except _SessionClosed:
            requests.put(("closed", None))
        except BaseException as exc:  # surface errors on the driving side
            requests.put(("error", exc))
        else:
            requests.put(("done", result))

    thread = threading.Thread(
        target=run, name=f"steps:{attack.name}", daemon=True
    )
    thread.start()
    awaiting_response = False
    try:
        while True:
            kind, value = requests.get()
            if kind == "done":
                return value
            if kind == "error":
                raise value
            if kind == "closed":  # pragma: no cover - close() races only
                return None
            awaiting_response = True
            scores = yield Query(value)
            awaiting_response = False
            responses.put(("scores", scores))
    finally:
        if awaiting_response:
            responses.put(("close", None))
            thread.join(_CLOSE_JOIN_TIMEOUT)
