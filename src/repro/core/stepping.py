"""The steppable attack protocol.

An attack exposed as a *generator* decouples its search logic from how
classifier queries are executed.  The protocol is small:

- the generator **yields** :class:`Query` objects (the perturbed image to
  score, plus whether the submission counts against the paper's query
  accounting);
- the caller **sends** back the classifier's score vector;
- the generator **returns** the final result (``StopIteration.value``).

Budget enforcement and query counting live *inside* the generator (via
:class:`StepCounter`), exactly where :class:`~repro.classifier.blackbox.
CountingClassifier` sat in the direct-call formulation, so a driven
generator is bit-identical to the classic ``attack()`` call -- the only
thing that moved is who performs the forward pass.  That inversion is
what lets the serving layer coalesce queries from many concurrent
sessions into batched model evaluations (:mod:`repro.serve.broker`).

Attacks with a natural incremental structure override
:meth:`~repro.attacks.base.OnePixelAttack.steps` with a native generator;
the base class falls back to :func:`threaded_steps`, which adapts any
``attack()`` implementation by running it on a helper thread and turning
its classifier calls into yields.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

import numpy as np

from repro.classifier.blackbox import QueryBudgetExceeded

Classifier = Callable[[np.ndarray], np.ndarray]

#: Seconds to wait for the helper thread of :func:`threaded_steps` to
#: acknowledge a close before it is abandoned (it is a daemon thread).
_CLOSE_JOIN_TIMEOUT = 2.0


@dataclass(frozen=True)
class Query:
    """One classifier submission requested by a steppable attack.

    ``counted`` is ``False`` only for threat-model inputs the paper does
    not charge to the attacker -- e.g. the sketch scoring the clean image
    it was handed.  Executors must answer every query either way; the
    flag only drives accounting (session query counts, budgets).
    """

    image: np.ndarray
    counted: bool = True


#: The protocol type: yields queries, receives score vectors, returns the
#: attack's result object.
AttackSteps = Generator[Query, np.ndarray, object]


@dataclass
class StepCounter:
    """In-generator query accounting with the classic budget semantics.

    Mirrors :class:`~repro.classifier.blackbox.CountingClassifier`: the
    check happens *before* the submission, so the ``budget + 1``-th
    counted query raises :class:`QueryBudgetExceeded` instead of being
    posed, and ``count`` equals the budget when the exception fires.
    """

    budget: Optional[int] = None
    count: int = field(default=0)

    def submit(self, image: np.ndarray) -> Query:
        """Account for one counted submission and build its query.

        Generators write ``scores = yield counter.submit(perturbed)``:
        the count is taken *before* the query executes, exactly like
        ``CountingClassifier.__call__``.
        """
        if self.budget is not None and self.count >= self.budget:
            raise QueryBudgetExceeded(self.budget)
        self.count += 1
        return Query(image)


def drive_steps(steps: AttackSteps, classifier: Classifier, observer=None):
    """Run a steppable attack to completion against a plain classifier.

    This is the thin synchronous driver ``attack()`` methods delegate to:
    every yielded query is answered immediately by ``classifier``, so
    behaviour is exactly the pre-protocol direct-call code path.

    ``observer``, if given, is called as ``observer(query, scores)``
    after each submission is answered and before the generator resumes.
    This is the trace hook :class:`repro.testkit.trace.TraceRecorder`
    uses to capture golden query traces; observers must not mutate
    either argument.
    """
    try:
        request = next(steps)
        while True:
            scores = classifier(request.image)
            if observer is not None:
                observer(request, scores)
            request = steps.send(scores)
    except StopIteration as stop:
        return stop.value


class _SessionClosed(BaseException):
    """Raised inside the helper thread when the generator is closed.

    Derives from ``BaseException`` so attack code catching ``Exception``
    (or :class:`QueryBudgetExceeded`) cannot swallow the shutdown.
    """


def threaded_steps(
    attack,
    image: np.ndarray,
    true_class: int,
    budget: Optional[int] = None,
    target_class: Optional[int] = None,
) -> AttackSteps:
    """Adapt a classic ``attack()`` implementation to the steps protocol.

    The attack runs on a daemon helper thread against a channel-backed
    classifier: each classifier call is forwarded to the consuming side
    as a yielded :class:`Query` and blocks until the answer is sent back.
    Query counting stays wherever the attack put it (its own
    ``CountingClassifier``), so results are bit-identical to a direct
    call; the adapter never counts anything itself.

    Closing the generator early injects :class:`_SessionClosed` into the
    pending classifier call so the helper thread unwinds promptly.
    """
    requests: "queue.SimpleQueue" = queue.SimpleQueue()
    responses: "queue.SimpleQueue" = queue.SimpleQueue()

    def channel_classifier(img: np.ndarray) -> np.ndarray:
        requests.put(("query", img))
        kind, value = responses.get()
        if kind == "close":
            raise _SessionClosed()
        return value

    def run() -> None:
        try:
            result = attack.attack(
                channel_classifier,
                image,
                true_class,
                budget=budget,
                target_class=target_class,
            )
        except _SessionClosed:
            requests.put(("closed", None))
        except BaseException as exc:  # surface errors on the driving side
            requests.put(("error", exc))
        else:
            requests.put(("done", result))

    thread = threading.Thread(
        target=run, name=f"steps:{attack.name}", daemon=True
    )
    thread.start()
    awaiting_response = False
    try:
        while True:
            kind, value = requests.get()
            if kind == "done":
                return value
            if kind == "error":
                raise value
            if kind == "closed":  # pragma: no cover - close() races only
                return None
            awaiting_response = True
            scores = yield Query(value)
            awaiting_response = False
            responses.put(("scores", scores))
    finally:
        if awaiting_response:
            responses.put(("close", None))
            thread.join(_CLOSE_JOIN_TIMEOUT)
