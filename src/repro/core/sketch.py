"""The one-pixel attack sketch (Algorithm 1, Appendix A).

A prioritizing program iterates over every (location, perturbation) pair,
querying the classifier until a perturbed image is misclassified.  Its
four condition holes control the dynamic reordering:

- ``B1`` true after a failed pair: push the pair's location-neighbours
  (same perturbation) to the *back* of the queue;
- ``B2`` true: push the next same-location pair to the *back*;
- ``B3`` true: *eagerly check* the location-neighbours (conceptually the
  front of the queue), recursing through their neighbours;
- ``B4`` true: eagerly check the next same-location pair, likewise
  recursing.

Every instantiation of the sketch visits each pair at most once and visits
all of them absent an early success, so it finds a successful adversarial
example whenever one exists in the corner perturbation space -- conditions
only affect the *order*, hence the query count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.stepping import (
    AttackSteps,
    Query,
    QueryBatch,
    StepCounter,
    drive_steps,
    resolve_batch_window,
)
from repro.classifier.blackbox import QueryBudgetExceeded
from repro.core.context import EvalContext
from repro.core.instrumentation import SketchStats
from repro.core.dsl.ast import Program
from repro.core.dsl.interpreter import evaluate_condition
from repro.core.initorder import initial_order
from repro.core.pairqueue import PairQueue
from repro.core.pairs import Pair, location_neighbors


@dataclass(frozen=True)
class SketchResult:
    """Outcome of one attack.

    ``queries`` counts only perturbed-image submissions; the clean image's
    scores are an input of the threat model (the attacker is handed a
    correctly-classified image), not an attack query.
    """

    success: bool
    queries: int
    pair: Optional[Pair] = None
    adversarial_image: Optional[np.ndarray] = None
    adversarial_class: Optional[int] = None

    def __post_init__(self):
        if self.success and self.pair is None:
            raise ValueError("successful results must carry the pair")


class OnePixelSketch:
    """The sketch instantiated with a :class:`~repro.core.dsl.ast.Program`.

    Parameters
    ----------
    program:
        The four conditions filling the sketch's holes.

    The instance is stateless across calls; :meth:`attack` may be invoked
    concurrently for different images.
    """

    def __init__(self, program: Program):
        self.program = program

    def attack(
        self,
        classifier: Callable[[np.ndarray], np.ndarray],
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        clean_scores: Optional[np.ndarray] = None,
        target_class: Optional[int] = None,
        stats: Optional[SketchStats] = None,
    ) -> SketchResult:
        """Run the attack on one image.

        Parameters
        ----------
        classifier:
            Black-box scorer ``(H, W, 3) -> (C,)``.
        image:
            The clean image, values in [0, 1].
        true_class:
            The class to dislodge (the image's correct classification).
        budget:
            Optional hard cap on queries; exceeding it aborts with a
            failed result whose ``queries`` equals the budget.
        clean_scores:
            ``N(x)`` if already known; computed once (uncounted) otherwise.
        target_class:
            Untargeted attack when ``None`` (the paper's setting: success
            is any misclassification).  Otherwise success requires the
            classifier to output exactly this class -- an extension; the
            conditions still observe the true class's confidence.
        stats:
            Optional :class:`~repro.core.instrumentation.SketchStats` to
            accumulate condition fire counts and reordering activity into.
        """
        return drive_steps(
            self.steps(
                image,
                true_class,
                budget=budget,
                clean_scores=clean_scores,
                target_class=target_class,
                stats=stats,
            ),
            classifier,
        )

    def steps(
        self,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        clean_scores: Optional[np.ndarray] = None,
        target_class: Optional[int] = None,
        stats: Optional[SketchStats] = None,
        batch_size: Optional[int] = None,
    ) -> AttackSteps:
        """The attack as a query-yielding generator (see
        :mod:`repro.core.stepping` for the protocol).

        When ``clean_scores`` is not supplied, the first yielded query is
        the *clean* image marked ``counted=False`` -- the paper treats
        ``N(x)`` as a threat-model input, not an attack submission, so it
        never touches the budget or the reported query count.

        With ``batch_size=N`` the generator yields speculative
        :class:`~repro.core.stepping.QueryBatch` objects: whenever a
        pair's scores are demanded and not already prefetched, the next
        queue entries ride along in the same forward pass (up to ``N``
        members, capped so prefetches never outrun the remaining
        budget).  Prefetched answers are kept until their pair is
        actually demanded -- dynamic reordering only changes *when* a
        pair is consumed, never its image, so no pair is ever posed
        twice.  Counting happens at consumption via
        :meth:`StepCounter.charge`, making results and per-query
        accounting bit-identical to the scalar path.
        """
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError(f"image must be (H, W, 3), got {image.shape}")
        if target_class is not None and target_class == true_class:
            raise ValueError("target class must differ from the true class")
        counter = StepCounter(budget)
        if clean_scores is None:
            clean_scores = np.asarray(
                (yield Query(image, counted=False)), dtype=np.float64
            )
        shape = image.shape[:2]
        queue = PairQueue(initial_order(image))
        program = self.program

        def is_success(winner: int) -> bool:
            if target_class is None:
                return winner != true_class
            return winner == target_class

        window = resolve_batch_window(batch_size)
        #: pair -> (query, scores row, origin batch) for posed-but-not-yet-
        #: demanded speculation; entries stay valid across queue reordering
        #: because a pair's perturbed image never changes.
        prefetched: Dict[Pair, tuple] = {}

        def fetch(pair: Pair, perturbed: np.ndarray):
            """Scores for ``pair`` (subgenerator), batched when enabled.

            Scalar mode submits one counted query.  Batched mode serves
            from the prefetch map, posing a new speculative batch (the
            demanded pair plus upcoming queue entries) on a miss; the
            charge and observer notification happen here, at
            consumption, in exact scalar order.
            """
            if window <= 0:
                return np.asarray(
                    (yield counter.submit(perturbed)), dtype=np.float64
                )
            entry = prefetched.pop(pair, None)
            if entry is None:
                if counter.allowance == 0:
                    counter.charge()  # raises where the scalar path stops
                room = window
                if counter.budget is not None:
                    room = max(
                        1, min(window, counter.allowance - len(prefetched))
                    )
                targets = [pair]
                if room > 1:
                    for upcoming in queue.peek(room - 1 + len(prefetched)):
                        if len(targets) >= room:
                            break
                        if upcoming not in prefetched:
                            targets.append(upcoming)
                batch = QueryBatch(tuple(
                    Query(perturbed if target is pair else target.apply(image))
                    for target in targets
                ))
                answers = np.asarray((yield batch), dtype=np.float64)
                for target, query, row in zip(targets, batch.queries, answers):
                    prefetched[target] = (query, row, batch)
                entry = prefetched.pop(pair)
            query, row, origin = entry
            counter.charge()
            origin.note(query, row)
            return row

        def check(pair: Pair):
            """Query one pair (subgenerator); returns (scores, result)."""
            perturbed = pair.apply(image)
            scores = yield from fetch(pair, perturbed)
            winner = int(np.argmax(scores))
            if is_success(winner):
                return scores, SketchResult(
                    success=True,
                    queries=counter.count,
                    pair=pair,
                    adversarial_image=perturbed,
                    adversarial_class=winner,
                )
            return scores, None

        def context_for(pair: Pair, scores: np.ndarray) -> EvalContext:
            return EvalContext(
                image=image,
                pair=pair,
                clean_scores=clean_scores,
                perturbed_scores=scores,
                true_class=true_class,
            )

        try:
            while queue:
                pair = queue.pop()
                scores, result = yield from check(pair)
                if stats is not None:
                    stats.main_loop_pops += 1
                if result is not None:
                    return result
                context = context_for(pair, scores)

                # push-back reordering (lines 5-6)
                b1 = evaluate_condition(program.b1, context)
                if stats is not None:
                    stats.record_condition("b1", b1)
                if b1:
                    for neighbor in location_neighbors(pair, shape):
                        if neighbor in queue:
                            queue.push_back(neighbor)
                            if stats is not None:
                                stats.pushed_back_location += 1
                b2 = evaluate_condition(program.b2, context)
                if stats is not None:
                    stats.record_condition("b2", b2)
                if b2:
                    next_same_location = queue.first_at_location(pair.location)
                    if next_same_location is not None:
                        queue.push_back(next_same_location)
                        if stats is not None:
                            stats.pushed_back_perturbation += 1

                # eager front-checking (lines 7-24)
                result = yield from self._eager_check(
                    pair, context, queue, shape, check, context_for, stats
                )
                if result is not None:
                    return result
        except QueryBudgetExceeded:
            return SketchResult(success=False, queries=counter.count)
        return SketchResult(success=False, queries=counter.count)

    def _eager_check(
        self,
        failed_pair: Pair,
        failed_context: EvalContext,
        queue: PairQueue,
        shape,
        check,
        context_for,
        stats: Optional[SketchStats] = None,
    ):
        """The eager BFS of Algorithm 1, lines 7-24 (subgenerator).

        ``loc_queue`` / ``pert_queue`` hold failed pairs whose neighbours
        (by location / by perturbation respectively) may deserve immediate
        checking, as decided by conditions ``B3`` / ``B4``.
        """
        program = self.program
        contexts: Dict[Pair, EvalContext] = {failed_pair: failed_context}
        loc_queue = deque([failed_pair])
        pert_queue = deque([failed_pair])

        def expand(candidates: List[Pair]):
            for candidate in candidates:
                queue.remove(candidate)
                scores, result = yield from check(candidate)
                if stats is not None:
                    stats.eager_checks += 1
                if result is not None:
                    return result
                contexts[candidate] = context_for(candidate, scores)
                loc_queue.append(candidate)
                pert_queue.append(candidate)
            return None

        while loc_queue or pert_queue:
            while loc_queue:
                pair = loc_queue.popleft()
                b3 = evaluate_condition(program.b3, contexts[pair])
                if stats is not None:
                    stats.record_condition("b3", b3)
                if b3:
                    in_queue = [
                        neighbor
                        for neighbor in location_neighbors(pair, shape)
                        if neighbor in queue
                    ]
                    result = yield from expand(in_queue)
                    if result is not None:
                        return result
            while pert_queue:
                pair = pert_queue.popleft()
                b4 = evaluate_condition(program.b4, contexts[pair])
                if stats is not None:
                    stats.record_condition("b4", b4)
                if b4:
                    next_same_location = queue.first_at_location(pair.location)
                    if next_same_location is not None:
                        result = yield from expand([next_same_location])
                        if result is not None:
                            return result
        return None
