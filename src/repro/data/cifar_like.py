"""The CIFAR-like synthetic dataset: 10 visual concepts at small resolution.

Class identities (chosen to be mutually discriminable yet to require
spatial reasoning, like the paper's CIFAR-10):

====  ===========  =========================================================
idx   name         concept
====  ===========  =========================================================
0     airplane     diagonal bright streak (half-plane) on a sky gradient
1     automobile   horizontal stripes, warm palette
2     bird         small off-center disk on textured background
3     cat          checkerboard, mid-frequency
4     deer         vertical stripes, green-brown palette
5     dog          two overlapping blotches, warm palette
6     frog         concentric rings, green palette
7     horse        cross / plus shape
8     ship         linear horizon gradient with lower-half dominant color
9     truck        coarse checkerboard with high-contrast palette
====  ===========  =========================================================
"""

from __future__ import annotations

import numpy as np

from repro.data import patterns
from repro.data.dataset import Dataset

CIFAR_LIKE_CLASSES = (
    "airplane",
    "automobile",
    "bird",
    "cat",
    "deer",
    "dog",
    "frog",
    "horse",
    "ship",
    "truck",
)

# Per-class base palettes (low color, high color).
_PALETTES = {
    0: ((0.45, 0.65, 0.90), (0.95, 0.95, 1.00)),
    1: ((0.75, 0.20, 0.15), (0.95, 0.80, 0.30)),
    2: ((0.55, 0.45, 0.30), (0.90, 0.85, 0.55)),
    3: ((0.35, 0.30, 0.30), (0.80, 0.70, 0.60)),
    4: ((0.25, 0.45, 0.20), (0.70, 0.60, 0.35)),
    5: ((0.60, 0.40, 0.25), (0.90, 0.75, 0.55)),
    6: ((0.10, 0.45, 0.20), (0.55, 0.85, 0.40)),
    7: ((0.40, 0.30, 0.25), (0.85, 0.75, 0.65)),
    8: ((0.20, 0.35, 0.60), (0.75, 0.85, 0.95)),
    9: ((0.15, 0.15, 0.20), (0.90, 0.85, 0.20)),
}


def _render_class(
    label: int, height: int, width: int, rng: np.random.Generator
) -> np.ndarray:
    low = patterns.jitter_color(_PALETTES[label][0], rng)
    high = patterns.jitter_color(_PALETTES[label][1], rng)
    if label == 0:
        angle = rng.uniform(np.pi / 6, np.pi / 3)
        field = patterns.half_plane(height, width, angle, rng.uniform(-0.3, 0.3))
    elif label == 1:
        field = patterns.stripes(
            height, width, rng.uniform(2.0, 3.5), np.pi / 2, rng.uniform(0, 2 * np.pi)
        )
    elif label == 2:
        center = (rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4))
        field = patterns.disk(height, width, center, rng.uniform(0.25, 0.45))
    elif label == 3:
        field = patterns.checkerboard(
            height, width, int(rng.integers(4, 7)), rng.uniform(0, np.pi)
        )
    elif label == 4:
        field = patterns.stripes(
            height, width, rng.uniform(2.0, 3.5), 0.0, rng.uniform(0, 2 * np.pi)
        )
    elif label == 5:
        field = patterns.blotches(height, width, rng, components=3)
    elif label == 6:
        center = (rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2))
        field = patterns.rings(
            height, width, center, rng.uniform(1.5, 2.5), rng.uniform(0, 2 * np.pi)
        )
    elif label == 7:
        center = (rng.uniform(-0.25, 0.25), rng.uniform(-0.25, 0.25))
        field = patterns.cross(height, width, center, rng.uniform(0.12, 0.22))
    elif label == 8:
        field = patterns.linear_gradient(
            height, width, np.pi / 2 + rng.uniform(-0.2, 0.2)
        )
    elif label == 9:
        field = patterns.checkerboard(
            height, width, int(rng.integers(2, 4)), rng.uniform(0, np.pi)
        )
    else:
        raise ValueError(f"unknown CIFAR-like class {label}")
    image = patterns.colorize(field, low, high)
    return patterns.finish(image, rng)


def make_cifar_like(
    num_per_class: int,
    size: int = 32,
    seed: int = 0,
    classes=None,
    ambiguity: float = 1.0,
    blend_range=(0.25, 0.55),
) -> Dataset:
    """Generate a balanced CIFAR-like dataset.

    Parameters
    ----------
    num_per_class:
        Number of images per class.
    size:
        Image side in pixels (the paper's CIFAR-10 uses 32).
    seed:
        Generator seed; the full dataset is deterministic in it.
    classes:
        Optional subset of class indices to generate (defaults to all 10).
    ambiguity:
        Probability that an image is blended with a random *distractor*
        class's pattern.  Blending puts part of the test set close to the
        trained decision boundaries, which is what makes classifiers
        realistically vulnerable to one-pixel attacks (real CIFAR-10
        models owe their vulnerability to exactly such low-margin
        inputs).  Set to 0 for a cleanly separable dataset.
    blend_range:
        Range of the distractor mixing weight (the label stays the
        primary class's, so weights must stay below 0.5 of the mix for
        the task to remain well-posed; the upper default 0.55 leaves a
        small deliberately-ambiguous tail).
    """
    if num_per_class <= 0:
        raise ValueError("num_per_class must be positive")
    if size < 4:
        raise ValueError("size must be at least 4")
    if not 0.0 <= ambiguity <= 1.0:
        raise ValueError("ambiguity must be in [0, 1]")
    selected = list(classes) if classes is not None else list(range(10))
    for label in selected:
        if not 0 <= label < 10:
            raise ValueError(f"class index {label} out of range")
    rng = np.random.default_rng(seed)
    images = []
    labels = []
    for label in selected:
        for _ in range(num_per_class):
            image = _render_class(label, size, size, rng)
            if rng.uniform() < ambiguity:
                distractor = int(rng.integers(0, 9))
                if distractor >= label:
                    distractor += 1
                weight = rng.uniform(*blend_range)
                image = (1.0 - weight) * image + weight * _render_class(
                    distractor, size, size, rng
                )
            images.append(image)
            labels.append(label)
    return Dataset(
        np.stack(images), np.asarray(labels, dtype=np.int64), CIFAR_LIKE_CLASSES
    )
