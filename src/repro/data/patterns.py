"""Parametric texture primitives for the synthetic datasets.

Every primitive renders a scalar field of shape (H, W) with values in
[0, 1]; :func:`colorize` turns a field into an RGB image by blending two
colors, and :func:`finish` applies brightness jitter and pixel noise.
All randomness flows through an explicit generator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def coordinate_grid(height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Normalized coordinates in [-1, 1] x [-1, 1], returned as (ys, xs)."""
    ys = np.linspace(-1.0, 1.0, height)[:, None] * np.ones((1, width))
    xs = np.linspace(-1.0, 1.0, width)[None, :] * np.ones((height, 1))
    return ys, xs


def stripes(
    height: int, width: int, frequency: float, angle: float, phase: float = 0.0
) -> np.ndarray:
    """Sinusoidal stripes at ``angle`` radians with ``frequency`` cycles."""
    ys, xs = coordinate_grid(height, width)
    axis = xs * np.cos(angle) + ys * np.sin(angle)
    return 0.5 + 0.5 * np.sin(2.0 * np.pi * frequency * axis + phase)


def checkerboard(height: int, width: int, cells: int, phase: float = 0.0) -> np.ndarray:
    """A ``cells x cells`` checkerboard (soft-edged via sign of sinusoids)."""
    ys, xs = coordinate_grid(height, width)
    wave = np.sin(np.pi * cells * (xs + 1) / 2 + phase) * np.sin(
        np.pi * cells * (ys + 1) / 2 + phase
    )
    return (wave > 0).astype(np.float64)


def disk(
    height: int,
    width: int,
    center: Tuple[float, float],
    radius: float,
    softness: float = 0.08,
) -> np.ndarray:
    """A filled disk at ``center`` (normalized coords) with soft edges."""
    ys, xs = coordinate_grid(height, width)
    distance = np.sqrt((xs - center[0]) ** 2 + (ys - center[1]) ** 2)
    return np.clip((radius - distance) / max(softness, 1e-6) + 0.5, 0.0, 1.0)


def rings(
    height: int,
    width: int,
    center: Tuple[float, float],
    frequency: float,
    phase: float = 0.0,
) -> np.ndarray:
    """Concentric sinusoidal rings around ``center``."""
    ys, xs = coordinate_grid(height, width)
    distance = np.sqrt((xs - center[0]) ** 2 + (ys - center[1]) ** 2)
    return 0.5 + 0.5 * np.sin(2.0 * np.pi * frequency * distance + phase)


def linear_gradient(height: int, width: int, angle: float) -> np.ndarray:
    """A linear ramp in [0, 1] along ``angle``."""
    ys, xs = coordinate_grid(height, width)
    axis = xs * np.cos(angle) + ys * np.sin(angle)
    lo, hi = axis.min(), axis.max()
    return (axis - lo) / max(hi - lo, 1e-9)


def radial_gradient(
    height: int, width: int, center: Tuple[float, float]
) -> np.ndarray:
    """A radial ramp: 1 at ``center`` falling to 0 at the farthest corner."""
    ys, xs = coordinate_grid(height, width)
    distance = np.sqrt((xs - center[0]) ** 2 + (ys - center[1]) ** 2)
    return 1.0 - distance / max(distance.max(), 1e-9)


def cross(
    height: int,
    width: int,
    center: Tuple[float, float],
    thickness: float,
) -> np.ndarray:
    """A plus-shaped mask centred at ``center``."""
    ys, xs = coordinate_grid(height, width)
    horizontal = np.abs(ys - center[1]) < thickness
    vertical = np.abs(xs - center[0]) < thickness
    return (horizontal | vertical).astype(np.float64)


def half_plane(height: int, width: int, angle: float, offset: float) -> np.ndarray:
    """A soft half-plane split at ``angle`` with signed ``offset``."""
    ys, xs = coordinate_grid(height, width)
    axis = xs * np.cos(angle) + ys * np.sin(angle) - offset
    return np.clip(axis * 4.0 + 0.5, 0.0, 1.0)


def blotches(
    height: int, width: int, rng: np.random.Generator, components: int = 4
) -> np.ndarray:
    """Smooth low-frequency random blobs (sum of random 2-D sinusoids)."""
    ys, xs = coordinate_grid(height, width)
    field = np.zeros((height, width))
    for _ in range(components):
        fx, fy = rng.uniform(0.5, 2.5, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        field += np.sin(2 * np.pi * (fx * xs + fy * ys) + phase)
    field -= field.min()
    field /= max(field.max(), 1e-9)
    return field


def colorize(
    field: np.ndarray, color_low: np.ndarray, color_high: np.ndarray
) -> np.ndarray:
    """Blend two RGB colors by the field value, giving an (H, W, 3) image."""
    field = np.clip(field, 0.0, 1.0)[..., None]
    return (1.0 - field) * np.asarray(color_low) + field * np.asarray(color_high)


def finish(
    image: np.ndarray,
    rng: np.random.Generator,
    noise: float = 0.04,
    brightness_jitter: float = 0.15,
) -> np.ndarray:
    """Apply brightness jitter and i.i.d. pixel noise, then clip to [0, 1]."""
    brightness = 1.0 + rng.uniform(-brightness_jitter, brightness_jitter)
    noisy = image * brightness + rng.normal(0.0, noise, size=image.shape)
    return np.clip(noisy, 0.0, 1.0)


def jitter_color(
    base: Tuple[float, float, float], rng: np.random.Generator, amount: float = 0.12
) -> np.ndarray:
    """Perturb a base RGB color, staying inside the unit cube."""
    color = np.asarray(base, dtype=np.float64)
    return np.clip(color + rng.uniform(-amount, amount, size=3), 0.0, 1.0)
