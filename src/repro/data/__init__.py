"""Procedurally generated image datasets.

These datasets stand in for CIFAR-10 and ImageNet, which are unavailable
offline.  Each class is a parametric visual concept (stripes, blobs,
rings, gradients, ...) rendered with per-sample jitter in color, geometry
and noise, so that a convolutional network must learn genuine spatial
structure to classify them -- the regime in which one-pixel attacks were
studied.
"""

from repro.data.augment import augment_batch
from repro.data.dataset import Dataset, LabeledImage
from repro.data.cifar_like import CIFAR_LIKE_CLASSES, make_cifar_like
from repro.data.imagenet_like import IMAGENET_LIKE_CLASSES, make_imagenet_like

__all__ = [
    "Dataset",
    "LabeledImage",
    "make_cifar_like",
    "make_imagenet_like",
    "augment_batch",
    "CIFAR_LIKE_CLASSES",
    "IMAGENET_LIKE_CLASSES",
]
