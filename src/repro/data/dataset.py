"""Dataset containers.

Images are stored channels-last, ``(H, W, 3)`` float64 in ``[0, 1]`` --
the representation the paper's attack operates on.  Conversion to the
channels-first layout used by the network framework happens at the
classifier boundary (:mod:`repro.classifier.blackbox`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LabeledImage:
    """A single image with its ground-truth class."""

    image: np.ndarray
    label: int

    def __post_init__(self):
        if self.image.ndim != 3 or self.image.shape[2] != 3:
            raise ValueError(f"image must be (H, W, 3), got {self.image.shape}")


class Dataset:
    """An in-memory labelled image dataset.

    Attributes
    ----------
    images:
        Array of shape (N, H, W, 3), float64 in [0, 1].
    labels:
        Integer array of shape (N,).
    class_names:
        Human-readable class names, indexed by label.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        class_names: Sequence[str],
    ):
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4 or images.shape[3] != 3:
            raise ValueError(f"images must be (N, H, W, 3), got {images.shape}")
        if labels.shape != (images.shape[0],):
            raise ValueError("labels must be (N,)")
        if images.size and (images.min() < 0.0 or images.max() > 1.0):
            raise ValueError("image values must lie in [0, 1]")
        if labels.size and (labels.min() < 0 or labels.max() >= len(class_names)):
            raise ValueError("label out of range for class_names")
        self.images = images
        self.labels = labels
        self.class_names = list(class_names)

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index: int) -> LabeledImage:
        return LabeledImage(image=self.images[index], label=int(self.labels[index]))

    def __iter__(self) -> Iterator[LabeledImage]:
        for index in range(len(self)):
            yield self[index]

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    # -- views ----------------------------------------------------------------

    def subset(self, indices: Sequence[int]) -> "Dataset":
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.images[indices], self.labels[indices], self.class_names)

    def of_class(self, label: int, limit: int = None) -> "Dataset":
        """All images of one class, optionally truncated to ``limit``."""
        indices = np.flatnonzero(self.labels == label)
        if limit is not None:
            indices = indices[:limit]
        return self.subset(indices)

    def to_nchw(self) -> np.ndarray:
        """Channels-first view of the images for the network framework."""
        return np.ascontiguousarray(self.images.transpose(0, 3, 1, 2))

    def pairs(self) -> List[Tuple[np.ndarray, int]]:
        """List of (image, label) tuples -- the form the attacks consume."""
        return [(self.images[index], int(self.labels[index])) for index in range(len(self))]
