"""The ImageNet-like synthetic dataset.

Eleven classes named after the paper's eleven ImageNet training classes
(great white shark ... jay), rendered at a higher resolution than the
CIFAR-like set.  What matters for the reproduction is the *regime*: with a
48x48 default resolution, the one-pixel search space has
``8 * 48 * 48 = 18432`` candidate pairs, which comfortably exceeds the
paper's 10000-query budget -- the same "budget smaller than the space"
situation the paper's ImageNet experiments probe.

The visual concepts combine two primitive fields each, making the classes
harder than the CIFAR-like ones (again mirroring the relative difficulty
of the two benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.data import patterns
from repro.data.dataset import Dataset

IMAGENET_LIKE_CLASSES = (
    "great_white_shark",
    "tiger_shark",
    "hammerhead",
    "electric_ray",
    "stingray",
    "cock",
    "hen",
    "house_finch",
    "junco",
    "bulbul",
    "jay",
)

_PALETTES = {
    0: ((0.25, 0.35, 0.50), (0.85, 0.90, 0.95)),
    1: ((0.20, 0.30, 0.40), (0.70, 0.75, 0.80)),
    2: ((0.30, 0.40, 0.55), (0.90, 0.90, 0.85)),
    3: ((0.15, 0.25, 0.35), (0.60, 0.70, 0.75)),
    4: ((0.35, 0.40, 0.45), (0.80, 0.80, 0.75)),
    5: ((0.70, 0.25, 0.15), (0.95, 0.75, 0.30)),
    6: ((0.60, 0.45, 0.30), (0.90, 0.80, 0.65)),
    7: ((0.55, 0.30, 0.25), (0.90, 0.70, 0.60)),
    8: ((0.30, 0.30, 0.35), (0.75, 0.75, 0.80)),
    9: ((0.45, 0.40, 0.30), (0.85, 0.80, 0.65)),
    10: ((0.25, 0.35, 0.65), (0.75, 0.85, 0.95)),
}


def _render_class(
    label: int, height: int, width: int, rng: np.random.Generator
) -> np.ndarray:
    low = patterns.jitter_color(_PALETTES[label][0], rng)
    high = patterns.jitter_color(_PALETTES[label][1], rng)
    if label == 0:  # great white shark: sharp half-plane fin over water texture
        base = patterns.half_plane(
            height, width, rng.uniform(0.2, 0.6), rng.uniform(-0.2, 0.2)
        )
        texture = patterns.stripes(height, width, 4.0, 0.1, rng.uniform(0, 6.28))
    elif label == 1:  # tiger shark: diagonal stripes over gradient
        base = patterns.stripes(
            height, width, rng.uniform(3.0, 4.5), np.pi / 4, rng.uniform(0, 6.28)
        )
        texture = patterns.linear_gradient(height, width, np.pi / 2)
    elif label == 2:  # hammerhead: wide horizontal bar (cross with thick arm)
        base = patterns.cross(
            height, width, (0.0, rng.uniform(-0.3, 0.0)), rng.uniform(0.15, 0.25)
        )
        texture = patterns.radial_gradient(height, width, (0.0, 0.0))
    elif label == 3:  # electric ray: concentric rings, tight
        base = patterns.rings(
            height,
            width,
            (rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2)),
            rng.uniform(2.5, 3.5),
            rng.uniform(0, 6.28),
        )
        texture = patterns.blotches(height, width, rng, components=2)
    elif label == 4:  # stingray: large soft disk low in the frame
        base = patterns.disk(
            height,
            width,
            (rng.uniform(-0.2, 0.2), rng.uniform(0.1, 0.4)),
            rng.uniform(0.4, 0.6),
            softness=0.25,
        )
        texture = patterns.stripes(height, width, 5.0, 0.0, rng.uniform(0, 6.28))
    elif label == 5:  # cock: vertical stripes, warm
        base = patterns.stripes(
            height, width, rng.uniform(2.5, 4.0), np.pi / 2, rng.uniform(0, 6.28)
        )
        texture = patterns.radial_gradient(
            height, width, (rng.uniform(-0.3, 0.3), -0.3)
        )
    elif label == 6:  # hen: blotches, warm
        base = patterns.blotches(height, width, rng, components=4)
        texture = patterns.linear_gradient(height, width, 0.0)
    elif label == 7:  # house finch: small disk high in the frame
        base = patterns.disk(
            height,
            width,
            (rng.uniform(-0.3, 0.3), rng.uniform(-0.45, -0.15)),
            rng.uniform(0.2, 0.35),
        )
        texture = patterns.stripes(height, width, 3.0, np.pi / 3, rng.uniform(0, 6.28))
    elif label == 8:  # junco: half-plane split horizontally (dark top)
        base = patterns.half_plane(height, width, np.pi / 2, rng.uniform(-0.15, 0.15))
        texture = patterns.blotches(height, width, rng, components=2)
    elif label == 9:  # bulbul: checkerboard, fine
        base = patterns.checkerboard(
            height, width, int(rng.integers(5, 8)), rng.uniform(0, np.pi)
        )
        texture = patterns.radial_gradient(height, width, (0.0, 0.0))
    elif label == 10:  # jay: rings + vertical gradient, blue
        base = patterns.rings(
            height, width, (0.0, 0.0), rng.uniform(1.2, 2.0), rng.uniform(0, 6.28)
        )
        texture = patterns.linear_gradient(height, width, np.pi / 2)
    else:
        raise ValueError(f"unknown ImageNet-like class {label}")
    field = 0.7 * base + 0.3 * texture
    image = patterns.colorize(field, low, high)
    return patterns.finish(image, rng, noise=0.03)


def make_imagenet_like(
    num_per_class: int,
    size: int = 48,
    seed: int = 0,
    classes=None,
    ambiguity: float = 1.0,
    blend_range=(0.25, 0.55),
) -> Dataset:
    """Generate a balanced ImageNet-like dataset (11 classes, 48x48 default).

    ``ambiguity`` / ``blend_range`` mix in a random distractor class's
    pattern, exactly as in :func:`repro.data.cifar_like.make_cifar_like`
    (see there for why this is what makes trained classifiers realistically
    one-pixel attackable).
    """
    if num_per_class <= 0:
        raise ValueError("num_per_class must be positive")
    if size < 8:
        raise ValueError("size must be at least 8")
    if not 0.0 <= ambiguity <= 1.0:
        raise ValueError("ambiguity must be in [0, 1]")
    selected = list(classes) if classes is not None else list(range(11))
    for label in selected:
        if not 0 <= label < 11:
            raise ValueError(f"class index {label} out of range")
    rng = np.random.default_rng(seed)
    images = []
    labels = []
    for label in selected:
        for _ in range(num_per_class):
            image = _render_class(label, size, size, rng)
            if rng.uniform() < ambiguity:
                distractor = int(rng.integers(0, 10))
                if distractor >= label:
                    distractor += 1
                weight = rng.uniform(*blend_range)
                image = (1.0 - weight) * image + weight * _render_class(
                    distractor, size, size, rng
                )
            images.append(image)
            labels.append(label)
    return Dataset(
        np.stack(images), np.asarray(labels, dtype=np.int64), IMAGENET_LIKE_CLASSES
    )
