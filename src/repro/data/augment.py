"""Training-time data augmentation.

Standard light augmentations for the synthetic datasets: horizontal
flips, shifted crops (zero-padded), and brightness jitter.  All operate
on channels-last ``(N, H, W, 3)`` batches and take an explicit generator,
so augmented training remains deterministic.
"""

from __future__ import annotations

import numpy as np


def random_horizontal_flip(
    images: np.ndarray, rng: np.random.Generator, probability: float = 0.5
) -> np.ndarray:
    """Flip each image left-right with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    out = images.copy()
    mask = rng.uniform(size=images.shape[0]) < probability
    out[mask] = out[mask, :, ::-1, :]
    return out


def random_shift(
    images: np.ndarray, rng: np.random.Generator, max_shift: int = 2
) -> np.ndarray:
    """Translate each image by up to ``max_shift`` pixels, zero-filling."""
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    if max_shift == 0:
        return images.copy()
    n, height, width, _ = images.shape
    out = np.zeros_like(images)
    shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
    for index in range(n):
        dy, dx = int(shifts[index, 0]), int(shifts[index, 1])
        src_y = slice(max(0, -dy), min(height, height - dy))
        src_x = slice(max(0, -dx), min(width, width - dx))
        dst_y = slice(max(0, dy), min(height, height + dy))
        dst_x = slice(max(0, dx), min(width, width + dx))
        out[index, dst_y, dst_x] = images[index, src_y, src_x]
    return out


def random_brightness(
    images: np.ndarray, rng: np.random.Generator, jitter: float = 0.1
) -> np.ndarray:
    """Scale each image's brightness by ``1 +- jitter``, clipping to [0, 1]."""
    if jitter < 0:
        raise ValueError("jitter must be non-negative")
    factors = 1.0 + rng.uniform(-jitter, jitter, size=(images.shape[0], 1, 1, 1))
    return np.clip(images * factors, 0.0, 1.0)


def augment_batch(
    images: np.ndarray,
    rng: np.random.Generator,
    flip_probability: float = 0.5,
    max_shift: int = 2,
    brightness_jitter: float = 0.1,
) -> np.ndarray:
    """The default augmentation pipeline: flip, shift, brightness."""
    if images.ndim != 4 or images.shape[3] != 3:
        raise ValueError(f"expected (N, H, W, 3) images, got {images.shape}")
    out = random_horizontal_flip(images, rng, flip_probability)
    out = random_shift(out, rng, max_shift)
    return random_brightness(out, rng, brightness_jitter)
