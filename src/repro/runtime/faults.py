"""Fault policy and outcome types for the execution engine.

The runtime treats every unit of work as an *attempt* that can end one of
four ways: a value, a Python exception inside the task, a per-task
timeout (the worker was killed), or a worker crash (the process died
without reporting).  :class:`FaultPolicy` says how many attempts a task
gets and how long each may run; :class:`TaskOutcome` is the uniform
record the pool hands back, success or not, so callers can degrade
gracefully instead of losing a whole run to one bad input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Error kinds recorded in :attr:`TaskError.kind`.
ERROR_EXCEPTION = "exception"
ERROR_TIMEOUT = "timeout"
ERROR_CRASH = "crash"


@dataclass(frozen=True)
class FaultPolicy:
    """How the pool responds when a task misbehaves.

    Attributes
    ----------
    timeout:
        Wall-clock seconds one attempt may run before its worker is
        terminated and the attempt recorded as a timeout.  ``None``
        disables the deadline.  Only enforced under process-based
        execution (an inline run cannot preempt itself).
    retries:
        Extra attempts after the first; ``retries=2`` means at most
        three attempts total.
    backoff:
        Delay in seconds before the first retry is re-enqueued.
    backoff_factor:
        Multiplier applied to the delay for each further retry
        (exponential backoff).
    jitter:
        Fraction of each delay randomized away, in ``[0, 1]``.  With
        ``jitter=0.25`` a 1-second backoff becomes a draw from
        ``[0.75s, 1s]``.  Jitter decorrelates retry storms when many
        tasks fail together (e.g. a worker crash fails a whole batch),
        so their retries do not hammer the classifier in lockstep.  The
        draw is seeded from ``(jitter_seed, task index, attempt)``, so a
        replayed run waits exactly as long as the original.
    max_delay:
        Cap in seconds on any single retry delay; ``None`` leaves the
        exponential schedule uncapped.
    jitter_seed:
        Base seed for the deterministic jitter stream.
    """

    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.0
    max_delay: Optional[float] = None
    jitter_seed: int = 0

    def __post_init__(self):
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_delay is not None and self.max_delay <= 0:
            raise ValueError("max_delay must be positive")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def retry_delay(self, attempt: int, index: int = 0) -> float:
        """Seconds to wait before re-enqueueing after failed ``attempt``.

        ``index`` is the failing task's index; it keys the jitter draw so
        simultaneous failures back off on decorrelated schedules while
        each task's own schedule stays reproducible.
        """
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        delay = self.backoff * self.backoff_factor ** (attempt - 1)
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        if self.jitter > 0.0 and delay > 0.0:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.jitter_seed, index, attempt])
            )
            delay *= 1.0 - self.jitter * rng.uniform(0.0, 1.0)
        return delay


@dataclass(frozen=True)
class TaskError:
    """Why an attempt (or a whole task) failed.

    ``kind`` is one of :data:`ERROR_EXCEPTION`, :data:`ERROR_TIMEOUT`,
    :data:`ERROR_CRASH`.  ``type`` and ``message`` describe the original
    exception for ``exception`` errors; ``traceback`` carries the
    worker-side formatted traceback when one exists.
    """

    kind: str
    type: str
    message: str
    traceback: Optional[str] = None

    @property
    def tag(self) -> str:
        """A compact ``kind:Type`` label for logs and degraded results."""
        return f"{self.kind}:{self.type}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "type": self.type,
            "message": self.message,
        }


@dataclass(frozen=True)
class TaskOutcome:
    """The pool's final word on one task.

    ``value`` is the task function's return value when ``ok``; ``error``
    is the *last* attempt's :class:`TaskError` otherwise.  ``attempts``
    counts attempts actually made and ``duration`` the seconds the final
    attempt ran (0.0 for crashes detected before a start report).
    """

    index: int
    ok: bool
    value: object = None
    error: Optional[TaskError] = None
    attempts: int = 1
    duration: float = 0.0

    def unwrap(self):
        """The value, or raise ``RuntimeError`` describing the failure."""
        if self.ok:
            return self.value
        assert self.error is not None
        raise RuntimeError(
            f"task {self.index} failed after {self.attempts} attempt(s): "
            f"{self.error.tag}: {self.error.message}"
        )
