"""The execution engine: parallel, cached, fault-tolerant, observable.

Every experiment in the paper is embarrassingly parallel -- "attack
hundreds of images", "evaluate a candidate on dozens of training
images" -- and this package is the layer the rest of the repo submits
that work to:

- :class:`WorkerPool` (:mod:`repro.runtime.pool`): process-based fan-out
  with deterministic ordering, so parallel runs are bit-identical to
  sequential ones.
- :class:`QueryCache` / :class:`CachedClassifier`
  (:mod:`repro.runtime.cache`): bounded LRU over image digests, with the
  cache-versus-query-count threat model made explicit.
- :class:`FaultPolicy` (:mod:`repro.runtime.faults`): per-task timeouts,
  bounded retries with backoff, and crash containment that degrades a
  run instead of killing it.
- :class:`RunLog` (:mod:`repro.runtime.events`): structured JSONL
  telemetry for tasks, workers, caches and summaries.
- :class:`CheckpointStore` (:mod:`repro.runtime.checkpoint`): durable
  write-ahead records that make campaigns, synthesis runs, and serving
  sessions resumable after a crash -- bit-identically.
"""

from repro.runtime.cache import CachedClassifier, QueryCache, image_digest
from repro.runtime.checkpoint import (
    CheckpointError,
    CheckpointMismatch,
    CheckpointStore,
    as_store,
    campaign_manifest,
    campaign_record,
    cell_record,
    decode_attack_result,
    encode_attack_result,
    encode_rng_state,
    load_campaign,
    load_matrix,
    matrix_manifest,
    restore_rng_state,
)
from repro.runtime.events import NullRunLog, RunLog, ensure_log
from repro.runtime.faults import FaultPolicy, TaskError, TaskOutcome
from repro.runtime.pool import WorkerPool, task_seed
from repro.runtime.tasks import (
    AttackTaskResult,
    AttackTaskRunner,
    PairEvaluationRunner,
    run_single_attack,
)

__all__ = [
    "AttackTaskResult",
    "AttackTaskRunner",
    "CachedClassifier",
    "CheckpointError",
    "CheckpointMismatch",
    "CheckpointStore",
    "FaultPolicy",
    "NullRunLog",
    "PairEvaluationRunner",
    "QueryCache",
    "RunLog",
    "TaskError",
    "TaskOutcome",
    "WorkerPool",
    "as_store",
    "campaign_manifest",
    "campaign_record",
    "cell_record",
    "decode_attack_result",
    "encode_attack_result",
    "encode_rng_state",
    "ensure_log",
    "image_digest",
    "load_campaign",
    "load_matrix",
    "matrix_manifest",
    "restore_rng_state",
    "run_single_attack",
    "task_seed",
]
