"""Structured run telemetry as append-only JSONL.

Every noteworthy moment of a run -- task start/end, retries, worker
restarts, cache statistics, final summaries -- becomes one JSON object on
one line.  The format is deliberately boring: it can be tailed while a
run is live, grepped afterwards, and loaded back with :meth:`RunLog.read`
for assertions in tests.

A :class:`RunLog` always keeps its events in memory too, so callers that
never give it a path (unit tests, ad-hoc scripts) still get the full
record via :attr:`RunLog.events`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional


class RunLog:
    """A thread-safe structured event log.

    Parameters
    ----------
    path:
        JSONL file to append events to; parent directories are created.
        ``None`` keeps events in memory only.
    clock:
        Timestamp source, injectable for deterministic tests.
    """

    def __init__(
        self, path: Optional[str] = None, clock: Callable[[], float] = time.time
    ):
        self.path = path
        self._clock = clock
        self._lock = threading.Lock()
        self.events: List[dict] = []
        self._handle = None
        if path is not None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "a")

    def emit(self, event_type: str, **fields) -> dict:
        """Record one event; returns the event dict (timestamp included)."""
        event = {"ts": self._clock(), "event": event_type}
        event.update(fields)
        with self._lock:
            self.events.append(event)
            if self._handle is not None:
                self._handle.write(json.dumps(event) + "\n")
                self._handle.flush()
        return event

    def counts(self) -> Dict[str, int]:
        """How many events of each type were emitted."""
        totals: Dict[str, int] = {}
        with self._lock:
            for event in self.events:
                totals[event["event"]] = totals.get(event["event"], 0) + 1
        return totals

    def of_type(self, event_type: str) -> List[dict]:
        with self._lock:
            return [e for e in self.events if e["event"] == event_type]

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def read(path: str) -> List[dict]:
        """Load a JSONL event file back into a list of dicts.

        A truncated *final* line -- the signature a crash leaves when the
        process died mid-append -- is tolerated: the partial record is
        replaced by a synthetic ``log_truncated`` event (carrying its
        1-based line number) so replay tooling can surface the data loss
        instead of dying on it.  Corruption anywhere *before* the final
        line still raises, because that means the file was damaged, not
        merely torn.
        """
        lines = []
        with open(path) as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if line:
                    lines.append((number, line))
        events = []
        for position, (number, line) in enumerate(lines):
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    events.append({"event": "log_truncated", "line": number})
                else:
                    raise
        return events


class NullRunLog(RunLog):
    """A do-nothing log so callers never need ``if log is not None``."""

    def __init__(self):
        super().__init__(path=None)

    def emit(self, event_type: str, **fields) -> dict:  # noqa: D102
        return {}


def ensure_log(run_log: Optional[RunLog]) -> RunLog:
    """``run_log`` itself, or a shared inert stand-in."""
    return run_log if run_log is not None else _NULL_LOG


_NULL_LOG = NullRunLog()
