"""Durable checkpoint store: crash-safe progress for long runs.

The expensive phases of this system -- full-dataset attack campaigns and
the Metropolis-Hastings synthesis loop -- run for hours, and before this
module a worker crash, OOM kill, or SIGTERM lost the entire run: the
runtime contained *per-task* faults (:class:`~repro.runtime.faults.FaultPolicy`)
but not *process-level* failure.  A :class:`CheckpointStore` closes that
gap with the classic write-ahead layout:

- ``manifest.json`` -- one atomically-replaced JSON document pinning the
  run's identity (attack name, budget, seed, dataset size...).  Resume
  refuses to mix checkpoints across incompatible runs
  (:class:`CheckpointMismatch`) instead of silently merging them.
- ``records.jsonl`` -- an append-only JSONL file of per-unit records
  (one completed :class:`~repro.attacks.base.AttackResult`, one chain
  snapshot, one persisted serve session).  Every append is flushed and
  ``fsync``'d before the caller proceeds, so a record either exists
  completely or not at all -- except for the final line, which a crash
  can tear mid-write.  :meth:`CheckpointStore.records` therefore drops a
  torn tail line (reporting it via the ``truncated`` flag) rather than
  raising, and :meth:`CheckpointStore.append` repairs a torn tail before
  writing so the file never accumulates garbage.

Consumers re-derive any per-unit randomness from
:func:`~repro.runtime.pool.task_seed` (recorded per unit and verified on
resume), which is what makes a resumed run bit-identical to an
uninterrupted one.  See :func:`repro.eval.runner.attack_dataset`,
:meth:`repro.core.synthesis.mh.MetropolisHastings.run`, and
:meth:`repro.serve.server.AttackServer.drain_and_stop` for the three
consumers.
"""

from __future__ import annotations

import json
import math
import os
import threading
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.attacks.base import AttackResult
from repro.core.pairs import Pair
from repro.core.sketch import SketchResult

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"


class CheckpointError(RuntimeError):
    """A checkpoint directory is unusable (corrupt beyond a torn tail)."""


class CheckpointMismatch(CheckpointError):
    """A checkpoint belongs to a different run than the one resuming.

    Raised instead of silently merging incompatible runs -- e.g. resuming
    an attack campaign with a different budget, base seed, or dataset
    size than the one that wrote the records.
    """


def _fsync_directory(path: str) -> None:
    """Flush directory metadata so a rename survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class CheckpointStore:
    """A write-ahead, atomic-rename checkpoint directory.

    Parameters
    ----------
    directory:
        Where ``manifest.json`` and ``records.jsonl`` live; created on
        first use.
    sync:
        ``fsync`` every append and manifest write (the default).  Tests
        that hammer the store may pass ``False``; production consumers
        should not.

    Thread-safe: appends are serialized under one lock, so concurrent
    session-driving threads can persist through a shared store.
    """

    def __init__(self, directory: str, sync: bool = True):
        self.directory = str(directory)
        self._sync = sync
        self._lock = threading.Lock()
        self._handle = None
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    @property
    def records_path(self) -> str:
        return os.path.join(self.directory, RECORDS_NAME)

    def write_manifest(self, payload: Dict) -> None:
        """Atomically replace the manifest (temp file + rename + fsync).

        A crash mid-write leaves either the old manifest or the new one,
        never a torn hybrid -- the rename is the commit point.
        """
        temp_path = self.manifest_path + ".tmp"
        with open(temp_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.flush()
            if self._sync:
                os.fsync(handle.fileno())
        os.replace(temp_path, self.manifest_path)
        if self._sync:
            _fsync_directory(self.directory)

    def manifest(self) -> Optional[Dict]:
        """The manifest, or ``None`` when the store is fresh."""
        try:
            with open(self.manifest_path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"corrupt manifest at {self.manifest_path}: {exc}"
            ) from exc

    def reconcile_manifest(self, expected: Dict) -> Dict:
        """Write ``expected`` on a fresh store; verify it on an old one.

        Returns the manifest in force.  Raises :class:`CheckpointMismatch`
        when an existing manifest disagrees with ``expected`` on any key,
        which is the guard against resuming the wrong run.
        """
        existing = self.manifest()
        if existing is None:
            self.write_manifest(expected)
            return expected
        if existing != expected:
            differing = sorted(
                key
                for key in set(existing) | set(expected)
                if existing.get(key) != expected.get(key)
            )
            raise CheckpointMismatch(
                f"checkpoint at {self.directory} belongs to a different run "
                f"(fields differ: {', '.join(differing)}); refusing to resume"
            )
        return existing

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------

    def append(self, record: Dict) -> None:
        """Durably append one record; returns only once it is on disk."""
        line = json.dumps(record)
        with self._lock:
            handle = self._open_for_append()
            handle.write(line + "\n")
            handle.flush()
            if self._sync:
                os.fsync(handle.fileno())

    def _open_for_append(self):
        if self._handle is not None:
            return self._handle
        # Repair a torn tail before appending: a crash mid-write leaves a
        # partial final line with no newline, and appending after it
        # would weld two records into one unparseable line.  Truncate
        # back to the last complete line instead; the lost unit is simply
        # re-executed on resume.
        if os.path.exists(self.records_path):
            with open(self.records_path, "rb+") as raw:
                raw.seek(0, os.SEEK_END)
                size = raw.tell()
                if size > 0:
                    raw.seek(-1, os.SEEK_END)
                    if raw.read(1) != b"\n":
                        raw.seek(0)
                        data = raw.read()
                        keep = data.rfind(b"\n") + 1
                        raw.truncate(keep)
        self._handle = open(self.records_path, "a")
        return self._handle

    def records(self) -> Tuple[List[Dict], bool]:
        """All complete records, plus whether a torn tail was dropped.

        A final line that fails to parse is treated as the residue of a
        crash mid-append and skipped; a malformed line anywhere *else*
        means the file was corrupted by something other than a crash and
        raises :class:`CheckpointError`.
        """
        try:
            with open(self.records_path) as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return [], False
        numbered = [
            (number, line.strip())
            for number, line in enumerate(lines, start=1)
            if line.strip()
        ]
        records: List[Dict] = []
        truncated = False
        for position, (number, line) in enumerate(numbered):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if position == len(numbered) - 1:
                    truncated = True
                    break
                raise CheckpointError(
                    f"corrupt record at {self.records_path}:{number}: {exc}"
                ) from exc
        return records, truncated

    def clear_records(self) -> None:
        """Atomically reset the record file (e.g. after consuming it)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            temp_path = self.records_path + ".tmp"
            with open(temp_path, "w") as handle:
                handle.flush()
                if self._sync:
                    os.fsync(handle.fileno())
            os.replace(temp_path, self.records_path)
            if self._sync:
                _fsync_directory(self.directory)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def as_store(
    checkpoint: Union[None, str, "os.PathLike", CheckpointStore]
) -> Optional[CheckpointStore]:
    """Accept a directory path or a ready store at API boundaries."""
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(str(checkpoint))


# ----------------------------------------------------------------------
# codecs: the JSON shapes records carry
# ----------------------------------------------------------------------


def encode_attack_result(result: AttackResult) -> Dict:
    """JSON-safe encoding of one :class:`AttackResult`, lossless."""
    return {
        "success": result.success,
        "queries": result.queries,
        "location": list(result.location) if result.location is not None else None,
        "perturbation": (
            None
            if result.perturbation is None
            else np.asarray(result.perturbation, dtype=np.float64).tolist()
        ),
        "adversarial_class": result.adversarial_class,
        "error": result.error,
    }


def decode_attack_result(payload: Dict) -> AttackResult:
    location = payload.get("location")
    perturbation = payload.get("perturbation")
    return AttackResult(
        success=payload["success"],
        queries=payload["queries"],
        location=tuple(location) if location is not None else None,
        perturbation=(
            np.asarray(perturbation, dtype=np.float64)
            if perturbation is not None
            else None
        ),
        adversarial_class=payload.get("adversarial_class"),
        error=payload.get("error"),
    )


def encode_sketch_result(result: SketchResult) -> Dict:
    """Encode one per-image sketch outcome.

    ``adversarial_image`` is deliberately dropped: it is derivable from
    the pair plus the clean image, and carrying full images would bloat
    every chain snapshot by the training-set size.
    """
    pair = result.pair
    return {
        "success": result.success,
        "queries": result.queries,
        "pair": [pair.row, pair.col, pair.corner] if pair is not None else None,
        "adversarial_class": result.adversarial_class,
    }


def decode_sketch_result(payload: Dict) -> SketchResult:
    pair = payload.get("pair")
    return SketchResult(
        success=payload["success"],
        queries=payload["queries"],
        pair=Pair(*pair) if pair is not None else None,
        adversarial_class=payload.get("adversarial_class"),
    )


def encode_rng_state(rng: np.random.Generator) -> Dict:
    """The bit generator's full state, JSON-safe.

    ``numpy`` exposes the state as nested dicts of Python ints (PCG64's
    128-bit counters are arbitrary-precision ints), so ``json`` round-
    trips it exactly; restoring it continues the stream bit-identically.
    """
    return json.loads(json.dumps(rng.bit_generator.state))


def restore_rng_state(rng: np.random.Generator, state: Dict) -> None:
    """Rewind ``rng`` to a recorded state (in place)."""
    expected = type(rng.bit_generator).__name__
    recorded = state.get("bit_generator")
    if recorded != expected:
        raise CheckpointMismatch(
            f"checkpoint recorded a {recorded} bit generator, "
            f"but the resuming run uses {expected}"
        )
    rng.bit_generator.state = state


def json_finite(value: float) -> Optional[float]:
    """Encode ``inf`` as ``None`` for strict-JSON consumers."""
    if value is None or math.isinf(value):
        return None
    return value


# ----------------------------------------------------------------------
# attack-campaign records
# ----------------------------------------------------------------------

CAMPAIGN_RECORD = "attack_result"


def campaign_manifest(
    attack_name: str,
    total_images: int,
    budget: Optional[int],
    base_seed: int,
) -> Dict:
    """The identity an attack campaign pins in its manifest."""
    return {
        "kind": "attack_campaign",
        "attack": attack_name,
        "images": total_images,
        "budget": budget,
        "base_seed": base_seed,
    }


def campaign_record(
    index: int, seed: int, result: AttackResult, seconds: Optional[float] = None
) -> Dict:
    """One durable per-image unit; ``seconds`` is its measured wall time.

    Timing rides along so a resumed campaign restores the *original*
    per-image latency of completed units instead of reporting zero --
    the perf trendline stays meaningful across kills.
    """
    record = {
        "kind": CAMPAIGN_RECORD,
        "index": index,
        "seed": seed,
        "result": encode_attack_result(result),
    }
    if seconds is not None:
        record["seconds"] = seconds
    return record


def load_campaign(
    store: CheckpointStore,
) -> Tuple[
    Optional[Dict],
    Dict[int, AttackResult],
    Dict[int, int],
    Dict[int, float],
    bool,
]:
    """Read a campaign checkpoint back.

    Returns ``(manifest, results_by_index, seeds_by_index,
    seconds_by_index, truncated)``.  Later records win on duplicate
    indices (a unit re-executed after a torn tail overwrites the dropped
    original).  Records written before timing existed simply have no
    entry in the seconds map.
    """
    records, truncated = store.records()
    results: Dict[int, AttackResult] = {}
    seeds: Dict[int, int] = {}
    seconds: Dict[int, float] = {}
    for record in records:
        if record.get("kind") != CAMPAIGN_RECORD:
            continue
        index = int(record["index"])
        results[index] = decode_attack_result(record["result"])
        seeds[index] = int(record["seed"])
        if record.get("seconds") is not None:
            seconds[index] = float(record["seconds"])
        else:
            seconds.pop(index, None)
    return store.manifest(), results, seeds, seconds, truncated


# ----------------------------------------------------------------------
# campaign-matrix records (repro.campaign)
# ----------------------------------------------------------------------

MATRIX_MANIFEST_KIND = "campaign_matrix"
CELL_RECORD = "cell_result"


def matrix_manifest(
    campaign_id: str, fingerprint: str, total_cells: int, spec: Dict
) -> Dict:
    """The identity a campaign *matrix* pins in its root manifest.

    Same contract as :func:`campaign_manifest` one level up: the
    fingerprint covers the canonical spec, so a matrix checkpoint cannot
    be resumed under an edited spec (``CheckpointMismatch`` instead of a
    silent merge of incompatible cells).
    """
    return {
        "kind": MATRIX_MANIFEST_KIND,
        "campaign": campaign_id,
        "fingerprint": fingerprint,
        "cells": total_cells,
        "spec": spec,
    }


def cell_record(cell_id: str, payload: Dict) -> Dict:
    """One durable completed-cell unit in a matrix checkpoint."""
    return {"kind": CELL_RECORD, "cell": cell_id, **payload}


def load_matrix(store: CheckpointStore) -> Tuple[Optional[Dict], Dict[str, Dict], bool]:
    """Read a matrix checkpoint back: ``(manifest, cells_by_id, truncated)``.

    Later records win on duplicate cell ids, mirroring
    :func:`load_campaign`'s torn-tail semantics.
    """
    records, truncated = store.records()
    cells: Dict[str, Dict] = {}
    for record in records:
        if record.get("kind") != CELL_RECORD:
            continue
        cells[str(record["cell"])] = record
    return store.manifest(), cells, truncated
