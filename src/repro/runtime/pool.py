"""A fault-tolerant process pool that preserves result ordering.

The engine behind parallel attack runs and parallel synthesis-candidate
evaluation.  Design choices, in decreasing order of importance:

1. **Bit-identical to sequential.**  Tasks are independent (each carries
   or derives everything it needs; task functions are pure up to their
   own worker-local state) and results are returned *in submission
   order*, so a run with ``workers=4`` produces exactly the results of
   the inline loop, whatever the scheduling interleaving was.
2. **One bad task cannot kill a run.**  Each worker owns a private task
   queue and is dispatched one task at a time, so the supervisor always
   knows which task a dead or deadline-blown worker was holding.  The
   task is retried per the :class:`~repro.runtime.faults.FaultPolicy`
   and, if it keeps failing, recorded as a failed
   :class:`~repro.runtime.faults.TaskOutcome` while the rest of the run
   proceeds on a replacement worker.
3. **Spawn-safe.**  Task functions and payloads cross process boundaries
   by pickling, so they must be module-level functions or instances of
   module-level classes (see :mod:`repro.runtime.tasks`).  Both the
   ``fork`` and ``spawn`` start methods work.

Workers are started per :meth:`WorkerPool.map` call and torn down at the
end, which keeps crash containment simple and leaks nothing between
phases; task payloads should therefore be coarse (a whole image attack,
a whole candidate evaluation) so process lifetime is amortized.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.runtime.events import RunLog, ensure_log
from repro.runtime.faults import (
    ERROR_CRASH,
    ERROR_EXCEPTION,
    ERROR_TIMEOUT,
    FaultPolicy,
    TaskError,
    TaskOutcome,
)

#: How long the supervisor blocks on the result queue per tick (seconds).
_POLL_INTERVAL = 0.02
#: Grace period for a worker to exit after its shutdown sentinel.
_JOIN_TIMEOUT = 2.0


def task_seed(base_seed: int, index: int) -> int:
    """A deterministic per-task seed, independent of scheduling order.

    Derived via :class:`numpy.random.SeedSequence` so nearby ``(base,
    index)`` pairs still yield statistically independent streams; task
    functions that need randomness should seed from this rather than a
    global generator, which is what keeps parallel runs reproducible.
    """
    return int(np.random.SeedSequence([base_seed, index]).generate_state(1)[0])


class _ResultChannel:
    """A many-writers, one-reader message channel over a pipe.

    ``multiprocessing.Queue`` is deliberately avoided here: its feeder
    *thread* writes asynchronously, so a worker dying via ``os._exit``
    (or a ``terminate()``) can leave a half-written frame in the pipe
    and wedge the supervisor's next read forever.  Here ``put`` sends
    the complete message synchronously under a cross-process lock before
    returning, so a worker that dies inside task code can never corrupt
    the channel -- the supervisor's poll-with-timeout stays safe.
    """

    def __init__(self, context):
        self._reader, self._writer = context.Pipe(duplex=False)
        self._lock = context.Lock()

    def put(self, message) -> None:
        with self._lock:
            self._writer.send(message)

    def poll_get(self, timeout: float):
        """The next message, or ``None`` if nothing arrives in time."""
        if self._reader.poll(timeout):
            return self._reader.recv()
        return None

    def close(self) -> None:
        self._reader.close()
        self._writer.close()


def _worker_loop(worker_id, fn, task_conn, results: _ResultChannel):
    """Body of one worker process: pull a task, run it, report."""
    while True:
        try:
            item = task_conn.recv()
        except (EOFError, OSError):  # supervisor went away
            break
        if item is None:
            break
        index, payload = item
        try:
            value = fn(payload)
        except BaseException as exc:  # contain *everything*; report upward
            results.put(
                (
                    "error",
                    worker_id,
                    index,
                    (type(exc).__name__, str(exc), traceback.format_exc()),
                )
            )
        else:
            try:
                results.put(("done", worker_id, index, value))
            except Exception as exc:  # e.g. an unpicklable return value
                results.put(
                    (
                        "error",
                        worker_id,
                        index,
                        (type(exc).__name__, str(exc), traceback.format_exc()),
                    )
                )


@dataclass
class _Worker:
    """Supervisor-side handle for one worker process."""

    worker_id: int
    process: multiprocessing.Process
    task_conn: object  # supervisor's send-end of the worker's task pipe
    assigned: Optional[int] = None  # task index currently dispatched
    assigned_at: float = 0.0
    attempts: int = 0  # attempt number of the dispatched task


@dataclass
class _TaskState:
    """Supervisor-side bookkeeping for one task."""

    index: int
    attempts: int = 0
    outcome: Optional[TaskOutcome] = None
    ready_at: float = 0.0  # backoff gate for retries


class WorkerPool:
    """Fan tasks out across processes; degrade, don't die.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``0`` runs tasks inline in the
        calling process (same fault handling minus preemptive timeouts).
    policy:
        Timeout/retry behaviour; defaults to no timeout, no retries.
    run_log:
        Optional :class:`~repro.runtime.events.RunLog` receiving
        structured events for every task and worker incident.
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``, ...);
        ``None`` uses the platform default.
    """

    def __init__(
        self,
        workers: int = 0,
        policy: Optional[FaultPolicy] = None,
        run_log: Optional[RunLog] = None,
        start_method: Optional[str] = None,
    ):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = workers
        self.policy = policy if policy is not None else FaultPolicy()
        self.run_log = ensure_log(run_log)
        self._context = multiprocessing.get_context(start_method)
        self._next_worker_id = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable,
        payloads: Sequence,
        task_name: str = "task",
    ) -> List[TaskOutcome]:
        """Run ``fn`` over every payload; outcomes in submission order.

        ``fn`` must be picklable when ``workers > 0``.  The returned list
        always has one :class:`TaskOutcome` per payload; inspect
        :attr:`TaskOutcome.ok` (or call :meth:`TaskOutcome.unwrap`) to
        distinguish values from contained failures.
        """
        payloads = list(payloads)
        started = time.monotonic()
        self.run_log.emit(
            "run_start",
            task=task_name,
            tasks=len(payloads),
            workers=self.workers,
            timeout=self.policy.timeout,
            retries=self.policy.retries,
        )
        if self.workers == 0:
            outcomes = self._map_inline(fn, payloads, task_name)
        else:
            outcomes = self._map_processes(fn, payloads, task_name)
        wall = time.monotonic() - started
        self.run_log.emit(
            "run_end",
            task=task_name,
            wall_time=wall,
            ok=sum(1 for o in outcomes if o.ok),
            failed=sum(1 for o in outcomes if not o.ok),
        )
        return outcomes

    def map_values(self, fn, payloads, task_name: str = "task") -> List:
        """:meth:`map`, unwrapping values and raising on any failure."""
        return [outcome.unwrap() for outcome in self.map(fn, payloads, task_name)]

    # ------------------------------------------------------------------
    # inline execution (workers == 0)
    # ------------------------------------------------------------------

    def _map_inline(self, fn, payloads, task_name) -> List[TaskOutcome]:
        outcomes: List[TaskOutcome] = []
        for index, payload in enumerate(payloads):
            attempts = 0
            while True:
                attempts += 1
                self.run_log.emit(
                    "task_start", task=task_name, index=index, attempt=attempts
                )
                begun = time.monotonic()
                try:
                    value = fn(payload)
                except Exception as exc:
                    duration = time.monotonic() - begun
                    error = TaskError(
                        kind=ERROR_EXCEPTION,
                        type=type(exc).__name__,
                        message=str(exc),
                        traceback=traceback.format_exc(),
                    )
                    if attempts < self.policy.max_attempts:
                        self.run_log.emit(
                            "task_retry",
                            task=task_name,
                            index=index,
                            attempt=attempts,
                            error=error.to_dict(),
                        )
                        time.sleep(self.policy.retry_delay(attempts, index))
                        continue
                    outcome = TaskOutcome(
                        index=index,
                        ok=False,
                        error=error,
                        attempts=attempts,
                        duration=duration,
                    )
                else:
                    duration = time.monotonic() - begun
                    outcome = TaskOutcome(
                        index=index,
                        ok=True,
                        value=value,
                        attempts=attempts,
                        duration=duration,
                    )
                break
            self._emit_task_end(task_name, outcome, worker=None)
            outcomes.append(outcome)
        return outcomes

    # ------------------------------------------------------------------
    # process-based execution
    # ------------------------------------------------------------------

    def _spawn_worker(self, fn, results: _ResultChannel) -> _Worker:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_reader, task_writer = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_loop,
            args=(worker_id, fn, task_reader, results),
            daemon=True,
        )
        process.start()
        task_reader.close()  # the worker holds the read end now
        return _Worker(worker_id=worker_id, process=process, task_conn=task_writer)

    def _map_processes(self, fn, payloads, task_name) -> List[TaskOutcome]:
        states = [_TaskState(index=i) for i in range(len(payloads))]
        pending: List[int] = list(range(len(payloads)))
        results = _ResultChannel(self._context)
        crew: List[_Worker] = [
            self._spawn_worker(fn, results)
            for _ in range(min(self.workers, max(len(payloads), 1)))
        ]
        done = 0
        try:
            while done < len(states):
                now = time.monotonic()
                self._dispatch(crew, pending, states, payloads, task_name, now)
                message = results.poll_get(_POLL_INTERVAL)
                if message is not None:
                    done += self._handle_message(
                        message, crew, states, pending, task_name
                    )
                now = time.monotonic()
                done += self._reap_deadline_blown(
                    crew, states, pending, task_name, fn, results, now
                )
                done += self._reap_crashed(
                    crew, states, pending, task_name, fn, results
                )
        finally:
            self._shutdown(crew, results)
        return [state.outcome for state in states]

    def _dispatch(self, crew, pending, states, payloads, task_name, now):
        """Hand ready tasks to idle workers, one task per worker."""
        for worker in crew:
            if worker.assigned is not None or not worker.process.is_alive():
                continue
            index = self._pop_ready(pending, states, now)
            if index is None:
                return
            state = states[index]
            state.attempts += 1
            worker.assigned = index
            worker.assigned_at = now
            worker.attempts = state.attempts
            self.run_log.emit(
                "task_start",
                task=task_name,
                index=index,
                attempt=state.attempts,
                worker=worker.worker_id,
            )
            worker.task_conn.send((index, payloads[index]))

    @staticmethod
    def _pop_ready(pending, states, now) -> Optional[int]:
        for position, index in enumerate(pending):
            if states[index].ready_at <= now:
                return pending.pop(position)
        return None

    def _handle_message(self, message, crew, states, pending, task_name) -> int:
        kind, worker_id, index = message[0], message[1], message[2]
        worker = next((w for w in crew if w.worker_id == worker_id), None)
        if worker is None or worker.assigned != index:
            # Stale report from a worker we already gave up on (e.g. a
            # terminate() racing completion); its task was re-routed.
            return 0
        duration = time.monotonic() - worker.assigned_at
        worker.assigned = None
        state = states[index]
        if kind == "done":
            state.outcome = TaskOutcome(
                index=index,
                ok=True,
                value=message[3],
                attempts=state.attempts,
                duration=duration,
            )
            self._emit_task_end(task_name, state.outcome, worker=worker_id)
            return 1
        error_type, error_message, error_traceback = message[3]
        error = TaskError(
            kind=ERROR_EXCEPTION,
            type=error_type,
            message=error_message,
            traceback=error_traceback,
        )
        return self._record_failure(
            state, error, duration, pending, task_name, worker_id
        )

    def _record_failure(
        self, state, error, duration, pending, task_name, worker_id
    ) -> int:
        """Retry the task or finalize it as failed; returns tasks completed."""
        if state.attempts < self.policy.max_attempts:
            state.ready_at = time.monotonic() + self.policy.retry_delay(
                state.attempts, state.index
            )
            pending.append(state.index)
            self.run_log.emit(
                "task_retry",
                task=task_name,
                index=state.index,
                attempt=state.attempts,
                worker=worker_id,
                error=error.to_dict(),
            )
            return 0
        state.outcome = TaskOutcome(
            index=state.index,
            ok=False,
            error=error,
            attempts=state.attempts,
            duration=duration,
        )
        self._emit_task_end(task_name, state.outcome, worker=worker_id)
        return 1

    def _reap_deadline_blown(
        self, crew, states, pending, task_name, fn, results, now
    ) -> int:
        if self.policy.timeout is None:
            return 0
        completed = 0
        for position, worker in enumerate(crew):
            if worker.assigned is None:
                continue
            elapsed = now - worker.assigned_at
            if elapsed <= self.policy.timeout:
                continue
            index = worker.assigned
            self.run_log.emit(
                "task_timeout",
                task=task_name,
                index=index,
                worker=worker.worker_id,
                elapsed=elapsed,
            )
            self._terminate(worker)
            crew[position] = self._replace_worker(worker, fn, results, task_name)
            error = TaskError(
                kind=ERROR_TIMEOUT,
                type="TaskTimeout",
                message=f"exceeded {self.policy.timeout:.3f}s deadline",
            )
            completed += self._record_failure(
                states[index], error, elapsed, pending, task_name, worker.worker_id
            )
        return completed

    def _reap_crashed(self, crew, states, pending, task_name, fn, results) -> int:
        completed = 0
        for position, worker in enumerate(crew):
            if worker.process.is_alive() or worker.assigned is None:
                continue
            # The process died without reporting: its exception machinery
            # never ran (hard crash, os._exit, kill signal).
            index = worker.assigned
            duration = time.monotonic() - worker.assigned_at
            self.run_log.emit(
                "worker_crash",
                task=task_name,
                index=index,
                worker=worker.worker_id,
                exitcode=worker.process.exitcode,
            )
            self._terminate(worker)
            crew[position] = self._replace_worker(worker, fn, results, task_name)
            error = TaskError(
                kind=ERROR_CRASH,
                type="WorkerCrashed",
                message=f"worker exited with code {worker.process.exitcode}",
            )
            completed += self._record_failure(
                states[index], error, duration, pending, task_name, worker.worker_id
            )
        return completed

    def _replace_worker(self, dead: _Worker, fn, results, task_name) -> _Worker:
        replacement = self._spawn_worker(fn, results)
        self.run_log.emit(
            "worker_restart",
            task=task_name,
            old_worker=dead.worker_id,
            new_worker=replacement.worker_id,
        )
        return replacement

    @staticmethod
    def _terminate(worker: _Worker) -> None:
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(_JOIN_TIMEOUT)
        worker.task_conn.close()

    def _shutdown(self, crew, results: _ResultChannel) -> None:
        for worker in crew:
            if worker.process.is_alive():
                try:
                    worker.task_conn.send(None)
                except (BrokenPipeError, OSError):  # worker already gone
                    pass
        deadline = time.monotonic() + _JOIN_TIMEOUT
        for worker in crew:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(_JOIN_TIMEOUT)
            try:
                worker.task_conn.close()
            except OSError:
                pass
        results.close()

    def _emit_task_end(self, task_name, outcome: TaskOutcome, worker) -> None:
        fields = dict(
            task=task_name,
            index=outcome.index,
            ok=outcome.ok,
            attempts=outcome.attempts,
            duration=outcome.duration,
            worker=worker,
        )
        if outcome.error is not None:
            fields["error"] = outcome.error.to_dict()
        self.run_log.emit("task_end", **fields)
