"""Query caching for deterministic black-box classifiers.

One-pixel attacks resubmit identical images surprisingly often: the
sketch's push-back semantics re-check pairs, synthesis evaluates related
programs on the same training images, and restarts replay whole prefixes.
For a *deterministic* classifier those repeats are pure waste, so a
bounded LRU cache keyed on the image bytes can serve them locally.

Threat-model note (this distinction is pinned by tests and matters for
paper fidelity): the paper's query count measures *submissions to the
oracle*.  Where the cache sits relative to the
:class:`~repro.classifier.blackbox.CountingClassifier` boundary decides
what the count means:

- ``CachedClassifier(CountingClassifier(model))`` -- the cache is on the
  attacker's side of the boundary.  A hit is served without touching the
  counting classifier, so ``count`` does **not** increment.  This models
  an attacker smart enough never to pay twice for the same submission;
  it changes the reported query counts relative to a cache-less run.
- ``CountingClassifier(CachedClassifier(model))`` -- the cache is behind
  the boundary.  Every submission is counted (paper-faithful numbers,
  bit-identical to a cache-less run) and the cache only saves wall-clock
  time on the repeated forward passes.

The execution engine's attack integration uses the second arrangement so
parallel, cached runs reproduce the paper's sequential numbers exactly.
"""

from __future__ import annotations

import base64
import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Mapping, Optional

import numpy as np

Classifier = Callable[[np.ndarray], np.ndarray]

DEFAULT_CACHE_SIZE = 4096

#: Seconds a :class:`TieredQueryCache` skips its remote tier after a
#: transport error before probing it again.  Keeps a dead L2 cheap (one
#: failed round trip per cooldown window, not per query) while letting a
#: restarted cache service be picked up again without any coordination.
DEFAULT_L2_COOLDOWN = 1.0


def normalized_cache_size(cache_size: Optional[int]) -> Optional[int]:
    """Map a user-facing cache size to a :class:`QueryCache` capacity.

    ``None`` and ``0`` both mean "no cache" (flags like ``--cache-size 0``
    are the documented way to disable caching, and must not crash on the
    cache constructor's positive-size requirement); negative sizes are
    rejected here at the configuration boundary with a clear message.
    """
    if cache_size is None or cache_size == 0:
        return None
    if cache_size < 0:
        raise ValueError(f"cache size must be non-negative, got {cache_size}")
    return int(cache_size)


def image_digest(image: np.ndarray) -> bytes:
    """A collision-resistant key for an image: shape, dtype and bytes."""
    array = np.ascontiguousarray(image)
    hasher = hashlib.sha1()
    hasher.update(str(array.shape).encode())
    hasher.update(str(array.dtype).encode())
    hasher.update(array.tobytes())
    return hasher.digest()


class QueryCache:
    """A bounded LRU mapping image digests to score vectors.

    Eviction is least-recently-*used*: both hits and inserts refresh an
    entry's recency.  Stored scores are copied on the way in and out so
    callers can never corrupt the cache by mutating a returned array.

    Every operation takes an internal lock, so a cache shared between
    threads (the serving broker's flusher plus synchronous ``evaluate``
    callers, or thread-pool session drivers) cannot corrupt the
    ``OrderedDict`` or lose counter increments.  The lock covers single
    operations only: callers needing a compound ``get``-then-``put`` to
    be atomic (e.g. the broker's within-batch dedup) still hold their
    own lock around the sequence.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: bytes) -> Optional[np.ndarray]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.copy()

    def put(self, key: bytes, scores: np.ndarray) -> None:
        scores = np.array(scores, copy=True)
        with self._lock:
            self._entries[key] = scores
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    @property
    def hit_rate(self) -> float:
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        if total == 0:
            return 0.0
        return hits / total

    def stats(self) -> Dict[str, float]:
        """JSON-safe counters for :class:`~repro.runtime.events.RunLog`."""
        with self._lock:
            hits, misses = self.hits, self.misses
            evictions, size = self.evictions, len(self._entries)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "size": size,
            "maxsize": self.maxsize,
            "hit_rate": hits / total if total else 0.0,
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


def encode_scores(scores: np.ndarray) -> Dict[str, object]:
    """A JSON-safe wire encoding of a score vector, bit-exact.

    Dtype, shape and raw bytes travel separately so the decoded array is
    byte-for-byte the encoded one -- the property the shared-cache
    differential oracle pins (a lossy float repr would make an L2 hit
    diverge from the forward pass it replaced in the last ulps).
    """
    array = np.ascontiguousarray(scores)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_scores(payload: Mapping[str, object]) -> np.ndarray:
    """Invert :func:`encode_scores`; returns a fresh writable array."""
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"])).copy()


class TieredQueryCache:
    """A two-tier query cache: in-process L1 LRU plus a shared remote L2.

    The L1 is an ordinary :class:`QueryCache`; the L2 is any client with

    - ``lookup(keys) -> {key: scores}`` -- one batched round trip that
      returns the subset of ``keys`` the remote tier holds, and
    - ``store(entries)`` -- one batched write-through round trip,

    both raising :class:`OSError` when the remote tier is unreachable.
    Cluster workers use the HTTP client from
    :mod:`repro.cluster.cacheservice`; tests substitute an in-process
    fake (:class:`repro.testkit.sharedcache.InMemorySharedCache`).

    The tier split is deliberate: :meth:`get`/:meth:`put` touch **L1
    only** (they are called under the broker's compound-lookup lock and
    must never pay a network round trip), while :meth:`fetch_remote` and
    :meth:`store_remote` are the explicit, batched L2 operations the
    broker runs outside its locks -- one lookup round trip per
    evaluation batch, one store round trip per model batch.  Remote hits
    are promoted into L1 so a session's re-queries never leave the
    process again.

    Fidelity: the cache sits *inside* the counting boundary exactly like
    a plain ``QueryCache`` -- an L1 hit, an L2 hit and a forward pass are
    all still counted queries, so per-session query counts are untouched
    no matter which tier answers (and the classifier is deterministic,
    so every tier answers with bit-identical scores).

    Degraded mode: any L2 transport error silently suspends the remote
    tier for ``cooldown`` seconds -- lookups return no hits and stores
    are dropped, so the cache degrades to exactly the private-L1
    behaviour.  Errors are counted, never raised.
    """

    def __init__(self, l1: QueryCache, l2, cooldown: float = DEFAULT_L2_COOLDOWN):
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        # serve.metrics is a dependency-free leaf module; importing its
        # Histogram here keeps the L2 round-trip distribution in the
        # same snapshot shape the cluster metrics plane already merges.
        from repro.serve.metrics import Histogram

        self.l1 = l1
        self.l2 = l2
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._suspended_until = 0.0
        self.l2_hits = 0
        self.l2_misses = 0
        self.l2_stores = 0
        self.l2_errors = 0
        self.rtt_ms = Histogram()

    # -- L1 surface (lock-cheap; safe under the broker's compound lock) --

    @property
    def maxsize(self) -> int:
        return self.l1.maxsize

    def __len__(self) -> int:
        return len(self.l1)

    def get(self, key: bytes) -> Optional[np.ndarray]:
        """L1 lookup only; the remote tier is batched via fetch_remote."""
        return self.l1.get(key)

    def put(self, key: bytes, scores: np.ndarray) -> None:
        """L1 insert only; write-through is batched via store_remote."""
        self.l1.put(key, scores)

    def clear(self) -> None:
        self.l1.clear()

    # -- L2 surface (batched; one round trip per call) -------------------

    def _available(self) -> bool:
        with self._lock:
            return time.monotonic() >= self._suspended_until

    def _suspend(self) -> None:
        with self._lock:
            self.l2_errors += 1
            self._suspended_until = time.monotonic() + self.cooldown

    def fetch_remote(self, keys: Iterable[bytes]) -> Dict[bytes, np.ndarray]:
        """One batched L2 lookup; hits are promoted into L1.

        Returns ``{key: scores}`` for the remote hits.  Unreachable or
        suspended L2 returns ``{}`` -- the caller proceeds exactly as if
        every key missed, which is the degraded-mode contract.
        """
        keys = list(keys)
        if not keys or not self._available():
            return {}
        started = time.monotonic()
        try:
            hits = self.l2.lookup(keys)
        except OSError:
            self._suspend()
            return {}
        elapsed_ms = (time.monotonic() - started) * 1000.0
        with self._lock:
            self.l2_hits += len(hits)
            self.l2_misses += len(keys) - len(hits)
            self.rtt_ms.observe(elapsed_ms)
        for key, scores in hits.items():
            self.l1.put(key, scores)
        return hits

    def store_remote(self, entries: Mapping[bytes, np.ndarray]) -> None:
        """One batched write-through of freshly scored entries."""
        if not entries or not self._available():
            return
        started = time.monotonic()
        try:
            self.l2.store(dict(entries))
        except OSError:
            self._suspend()
            return
        elapsed_ms = (time.monotonic() - started) * 1000.0
        with self._lock:
            self.l2_stores += len(entries)
            self.rtt_ms.observe(elapsed_ms)

    # -- observability ---------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while the remote tier is suspended after an error."""
        return not self._available()

    @property
    def hit_rate(self) -> float:
        return self.l1.hit_rate

    def stats(self) -> Dict[str, object]:
        """L1 counters at the top level (shape-compatible with
        :meth:`QueryCache.stats`, so existing rollups keep working) plus
        an ``l2`` sub-document with the shared-tier accounting."""
        snapshot = self.l1.stats()
        with self._lock:
            l2_total = self.l2_hits + self.l2_misses
            snapshot["tiered"] = True
            snapshot["l2"] = {
                "hits": self.l2_hits,
                "misses": self.l2_misses,
                "stores": self.l2_stores,
                "errors": self.l2_errors,
                "hit_rate": self.l2_hits / l2_total if l2_total else 0.0,
                "rtt_ms": self.rtt_ms.snapshot(),
                "degraded": time.monotonic() < self._suspended_until,
            }
        return snapshot


class CachedClassifier:
    """Serve repeated queries of a deterministic classifier from a cache.

    Wraps *any* classifier callable.  See the module docstring for where
    to place it relative to ``CountingClassifier`` -- outside the
    boundary to deduplicate paid submissions (hits do not increment the
    count), inside to speed up forward passes without touching the
    paper-faithful accounting.

    The wrapped classifier must be deterministic; caching a stochastic
    classifier silently freezes its answers.
    """

    def __init__(
        self,
        classifier: Classifier,
        cache: Optional[QueryCache] = None,
        maxsize: int = DEFAULT_CACHE_SIZE,
    ):
        self._classifier = classifier
        self.cache = cache if cache is not None else QueryCache(maxsize)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        key = image_digest(image)
        scores = self.cache.get(key)
        if scores is not None:
            return scores
        scores = self._classifier(image)
        self.cache.put(key, scores)
        return scores

    def batch(self, images) -> np.ndarray:
        """Score many images, serving hits from the cache.

        The canonical batched entry point
        (:func:`~repro.classifier.blackbox.batch_scores`) dispatches here
        when a cached classifier is queried with a batch: each image is
        looked up individually, the distinct misses go to the wrapped
        classifier as one batch, and results come back in input order.
        Repeats *within* one batch are scored once but counted as misses
        (the lookups all happen before the model call), so hit/miss
        statistics can differ slightly from a sequential replay; returned
        scores do not.
        """
        from repro.classifier.blackbox import batch_scores

        if not isinstance(images, np.ndarray):
            images = list(images)
        if len(images) == 0:
            return batch_scores(self._classifier, images)
        keys = [image_digest(np.asarray(image)) for image in images]
        scores: List[Optional[np.ndarray]] = [self.cache.get(key) for key in keys]
        first_seen: Dict[bytes, int] = {}
        miss_images = []
        for position, key in enumerate(keys):
            if scores[position] is None and key not in first_seen:
                first_seen[key] = len(miss_images)
                miss_images.append(images[position])
        if miss_images:
            fresh = np.asarray(batch_scores(self._classifier, miss_images))
            for key, slot in first_seen.items():
                self.cache.put(key, fresh[slot])
            for position, key in enumerate(keys):
                if scores[position] is None:
                    scores[position] = np.array(fresh[first_seen[key]], copy=True)
        return np.stack(scores)

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate

    def stats(self) -> Dict[str, float]:
        return self.cache.stats()
