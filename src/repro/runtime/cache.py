"""Query caching for deterministic black-box classifiers.

One-pixel attacks resubmit identical images surprisingly often: the
sketch's push-back semantics re-check pairs, synthesis evaluates related
programs on the same training images, and restarts replay whole prefixes.
For a *deterministic* classifier those repeats are pure waste, so a
bounded LRU cache keyed on the image bytes can serve them locally.

Threat-model note (this distinction is pinned by tests and matters for
paper fidelity): the paper's query count measures *submissions to the
oracle*.  Where the cache sits relative to the
:class:`~repro.classifier.blackbox.CountingClassifier` boundary decides
what the count means:

- ``CachedClassifier(CountingClassifier(model))`` -- the cache is on the
  attacker's side of the boundary.  A hit is served without touching the
  counting classifier, so ``count`` does **not** increment.  This models
  an attacker smart enough never to pay twice for the same submission;
  it changes the reported query counts relative to a cache-less run.
- ``CountingClassifier(CachedClassifier(model))`` -- the cache is behind
  the boundary.  Every submission is counted (paper-faithful numbers,
  bit-identical to a cache-less run) and the cache only saves wall-clock
  time on the repeated forward passes.

The execution engine's attack integration uses the second arrangement so
parallel, cached runs reproduce the paper's sequential numbers exactly.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Dict, Optional

import numpy as np

Classifier = Callable[[np.ndarray], np.ndarray]

DEFAULT_CACHE_SIZE = 4096


def image_digest(image: np.ndarray) -> bytes:
    """A collision-resistant key for an image: shape, dtype and bytes."""
    array = np.ascontiguousarray(image)
    hasher = hashlib.sha1()
    hasher.update(str(array.shape).encode())
    hasher.update(str(array.dtype).encode())
    hasher.update(array.tobytes())
    return hasher.digest()


class QueryCache:
    """A bounded LRU mapping image digests to score vectors.

    Eviction is least-recently-*used*: both hits and inserts refresh an
    entry's recency.  Stored scores are copied on the way in and out so
    callers can never corrupt the cache by mutating a returned array.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: bytes) -> Optional[np.ndarray]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.copy()

    def put(self, key: bytes, scores: np.ndarray) -> None:
        self._entries[key] = np.array(scores, copy=True)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def stats(self) -> Dict[str, float]:
        """JSON-safe counters for :class:`~repro.runtime.events.RunLog`."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        self._entries.clear()


class CachedClassifier:
    """Serve repeated queries of a deterministic classifier from a cache.

    Wraps *any* classifier callable.  See the module docstring for where
    to place it relative to ``CountingClassifier`` -- outside the
    boundary to deduplicate paid submissions (hits do not increment the
    count), inside to speed up forward passes without touching the
    paper-faithful accounting.

    The wrapped classifier must be deterministic; caching a stochastic
    classifier silently freezes its answers.
    """

    def __init__(
        self,
        classifier: Classifier,
        cache: Optional[QueryCache] = None,
        maxsize: int = DEFAULT_CACHE_SIZE,
    ):
        self._classifier = classifier
        self.cache = cache if cache is not None else QueryCache(maxsize)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        key = image_digest(image)
        scores = self.cache.get(key)
        if scores is not None:
            return scores
        scores = self._classifier(image)
        self.cache.put(key, scores)
        return scores

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate

    def stats(self) -> Dict[str, float]:
        return self.cache.stats()
