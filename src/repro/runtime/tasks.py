"""Spawn-safe task functions for the execution engine.

Everything here crosses process boundaries, so task callables are
instances of module-level classes (picklable under both ``fork`` and
``spawn``) whose heavyweight state -- the attack, the classifier, a
program -- is shipped **once per worker** when the worker starts, while
the per-task payload stays a tiny ``(image, true_class)`` tuple.

Worker-local state (the lazily built query cache, the instantiated
sketch) is created on first use inside the worker and reused across that
worker's tasks; it never leaks back to the parent except as explicit
numbers in the returned envelopes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.attacks.base import AttackResult, OnePixelAttack
from repro.classifier.blackbox import QueryBudgetExceeded
from repro.core.dsl.ast import Program
from repro.core.sketch import OnePixelSketch, SketchResult
from repro.runtime.cache import CachedClassifier, normalized_cache_size

TaskPayload = Tuple[np.ndarray, int]

#: Error tag recorded on degraded results of non-compliant attacks.
BUDGET_ESCAPE_TAG = "QueryBudgetExceeded"


def run_single_attack(
    attack: OnePixelAttack,
    classifier,
    image: np.ndarray,
    true_class: int,
    budget: Optional[int],
) -> AttackResult:
    """One attack with graceful budget exhaustion.

    Compliant attacks catch :class:`QueryBudgetExceeded` themselves and
    return a failed result at the queries actually posed.  An attack
    that lets the exception escape is recorded as a failure at the full
    budget with an error tag instead of poisoning the whole dataset run.
    """
    try:
        return attack.attack(classifier, image, true_class, budget=budget)
    except QueryBudgetExceeded as exc:
        spent = budget if budget is not None else exc.budget
        return AttackResult(success=False, queries=spent, error=BUDGET_ESCAPE_TAG)


@dataclass(frozen=True)
class AttackTaskResult:
    """Envelope a worker returns per attacked image.

    ``cache_hits`` / ``cache_misses`` are the *deltas* this task added to
    its worker-local query cache, so the parent can aggregate a global
    hit rate without sharing memory across processes.  ``seconds`` is
    the wall-clock time the attack itself took inside the worker
    (excluding pool scheduling and transport), which is what campaign
    reports and the perf trendline track as per-image latency.
    """

    result: AttackResult
    cache_hits: int = 0
    cache_misses: int = 0
    seconds: Optional[float] = None


class AttackTaskRunner:
    """Picklable ``(image, true_class) -> AttackTaskResult`` callable.

    The optional query cache wraps the classifier *inside* the attack's
    own counting boundary, so it accelerates repeated forward passes
    without altering the paper-faithful per-image query counts -- see
    :mod:`repro.runtime.cache` for the threat-model discussion.

    ``cache_size=0`` is accepted as "no cache" (the natural meaning of a
    zero-entry cache, and what the CLI's ``--cache-size 0`` default sends
    through); negative sizes are rejected here, at the engine boundary,
    instead of surfacing as a :class:`QueryCache` crash inside a worker.

    ``freeze=True`` switches the classifier onto the inference fast path
    (see :meth:`repro.nn.Module.freeze`) on first use in each worker --
    after unpickling, so the flag is spawn-safe.  Classifiers without a
    ``freeze`` method are left untouched.

    ``step_batch`` sets the attack's batch-native stepping window
    (:attr:`~repro.attacks.base.OnePixelAttack.batch_size`) inside the
    worker: ``None`` leaves the attack's own default, ``0`` pins the
    legacy scalar protocol, ``N > 0`` speculates up to N queries per
    vectorized forward pass.  Results are bit-identical either way.
    """

    def __init__(
        self,
        attack: OnePixelAttack,
        classifier,
        budget: Optional[int] = None,
        cache_size: Optional[int] = None,
        freeze: bool = False,
        step_batch: Optional[int] = None,
    ):
        self.attack = attack
        self.classifier = classifier
        self.budget = budget
        self.cache_size = normalized_cache_size(cache_size)
        self.freeze = freeze
        self.step_batch = step_batch
        self._cached: Optional[CachedClassifier] = None
        self._frozen = False

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cached"] = None  # caches are worker-local, never shipped
        state["_frozen"] = False  # re-freeze (idempotent) in the worker
        return state

    def _effective_classifier(self):
        if self.freeze and not self._frozen:
            freeze_method = getattr(self.classifier, "freeze", None)
            if freeze_method is not None:
                freeze_method()
            self._frozen = True
        if self.cache_size is None:
            return self.classifier
        if self._cached is None:
            self._cached = CachedClassifier(self.classifier, maxsize=self.cache_size)
        return self._cached

    def __call__(self, payload: TaskPayload) -> AttackTaskResult:
        image, true_class = payload
        if self.step_batch is not None:
            # worker-side so the window survives pickling regardless of
            # how the attack class handles unknown attributes
            self.attack.batch_size = self.step_batch
        classifier = self._effective_classifier()
        hits_before = misses_before = 0
        if self._cached is not None:
            hits_before = self._cached.cache.hits
            misses_before = self._cached.cache.misses
        started = time.perf_counter()
        result = run_single_attack(
            self.attack, classifier, image, true_class, self.budget
        )
        seconds = time.perf_counter() - started
        if self._cached is not None:
            return AttackTaskResult(
                result=result,
                cache_hits=self._cached.cache.hits - hits_before,
                cache_misses=self._cached.cache.misses - misses_before,
                seconds=seconds,
            )
        return AttackTaskResult(result=result, seconds=seconds)


class PairEvaluationRunner:
    """Picklable per-training-image evaluator for synthesis candidates.

    Ships the candidate :class:`Program` once per worker; the sketch is
    instantiated lazily in the worker and reused for every image that
    worker evaluates.
    """

    def __init__(
        self,
        program: Program,
        classifier,
        per_image_budget: Optional[int] = None,
    ):
        self.program = program
        self.classifier = classifier
        self.per_image_budget = per_image_budget
        self._sketch: Optional[OnePixelSketch] = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_sketch"] = None
        return state

    def __call__(self, payload: TaskPayload) -> SketchResult:
        if self._sketch is None:
            self._sketch = OnePixelSketch(self.program)
        image, true_class = payload
        return self._sketch.attack(
            self.classifier, image, true_class, budget=self.per_image_budget
        )
