"""A uniform-random one-pixel baseline (Narodytska & Kasiviswanathan style).

The simplest black-box attack: walk the (location, corner) pair space in
a uniformly random order without repetition, returning the first
successful pair.  It shares the sketch's perturbation space and
completeness but uses no prioritization whatsoever, so it lower-bounds
what any prioritization (fixed or learned) must beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks.base import AttackResult, Classifier, OnePixelAttack
from repro.core.stepping import (
    AttackSteps,
    Query,
    QueryBatch,
    StepCounter,
    drive_steps,
    resolve_batch_window,
)
from repro.classifier.blackbox import QueryBudgetExceeded
from repro.core.geometry import NUM_CORNERS, RGB_CORNERS


@dataclass(frozen=True)
class UniformRandomConfig:
    seed: int = 0


class UniformRandomAttack(OnePixelAttack):
    """Exhaustive search of the corner space in random order."""

    def __init__(self, config: UniformRandomConfig = None):
        self.config = config or UniformRandomConfig()

    @property
    def name(self) -> str:
        return "UniformRandom"

    def attack(
        self,
        classifier: Classifier,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
    ) -> AttackResult:
        return drive_steps(
            self.steps(image, true_class, budget=budget, target_class=target_class),
            classifier,
        )

    def steps(
        self,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> AttackSteps:
        """The random walk as a generator; batches candidate blocks.

        With a batch window, consecutive candidates from the random
        order are posed as one :class:`QueryBatch` (Sparse-RS style
        candidate-block evaluation).  Blocks never outrun the budget --
        the block size is capped at the remaining allowance -- and each
        member is charged and checked for success in walk order, so an
        early win returns with exactly the scalar path's query count.
        """
        self._validate(image)
        if batch_size is None:
            batch_size = self.batch_size
        window = resolve_batch_window(batch_size)
        rng = np.random.default_rng(self.config.seed)
        counter = StepCounter(budget)
        d1, d2 = image.shape[:2]
        order = rng.permutation(d1 * d2 * NUM_CORNERS)

        def decode(flat: int):
            corner = int(flat % NUM_CORNERS)
            location_index = int(flat // NUM_CORNERS)
            row, col = location_index // d2, location_index % d2
            perturbed = image.copy()
            perturbed[row, col] = RGB_CORNERS[corner]
            return corner, row, col, perturbed

        def verdict(corner, row, col, scores) -> Optional[AttackResult]:
            winner = int(np.argmax(scores))
            won = (
                winner != true_class
                if target_class is None
                else winner == target_class
            )
            if won:
                return AttackResult(
                    success=True,
                    queries=counter.count,
                    location=(row, col),
                    perturbation=RGB_CORNERS[corner],
                    adversarial_class=winner,
                )
            return None

        try:
            if window <= 0:
                for flat in order:
                    corner, row, col, perturbed = decode(flat)
                    scores = yield counter.submit(perturbed)
                    result = verdict(corner, row, col, scores)
                    if result is not None:
                        return result
            else:
                position = 0
                while position < len(order):
                    if counter.allowance == 0:
                        counter.charge()  # raises at the scalar stop point
                    size = len(order) - position
                    size = min(size, window)
                    if counter.budget is not None:
                        size = min(size, counter.allowance)
                    block = [decode(flat) for flat in order[position:position + size]]
                    batch = QueryBatch(tuple(
                        Query(perturbed) for _, _, _, perturbed in block
                    ))
                    answers = np.asarray((yield batch), dtype=np.float64)
                    for (corner, row, col, _), query, scores in zip(
                        block, batch.queries, answers
                    ):
                        counter.charge()
                        batch.note(query, scores)
                        result = verdict(corner, row, col, scores)
                        if result is not None:
                            return result
                    position += size
        except QueryBudgetExceeded:
            pass
        return AttackResult(success=False, queries=counter.count)
