"""A uniform-random one-pixel baseline (Narodytska & Kasiviswanathan style).

The simplest black-box attack: walk the (location, corner) pair space in
a uniformly random order without repetition, returning the first
successful pair.  It shares the sketch's perturbation space and
completeness but uses no prioritization whatsoever, so it lower-bounds
what any prioritization (fixed or learned) must beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks.base import AttackResult, Classifier, OnePixelAttack
from repro.core.stepping import AttackSteps, StepCounter, drive_steps
from repro.classifier.blackbox import QueryBudgetExceeded
from repro.core.geometry import NUM_CORNERS, RGB_CORNERS


@dataclass(frozen=True)
class UniformRandomConfig:
    seed: int = 0


class UniformRandomAttack(OnePixelAttack):
    """Exhaustive search of the corner space in random order."""

    def __init__(self, config: UniformRandomConfig = None):
        self.config = config or UniformRandomConfig()

    @property
    def name(self) -> str:
        return "UniformRandom"

    def attack(
        self,
        classifier: Classifier,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
    ) -> AttackResult:
        return drive_steps(
            self.steps(image, true_class, budget=budget, target_class=target_class),
            classifier,
        )

    def steps(
        self,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
    ) -> AttackSteps:
        self._validate(image)
        rng = np.random.default_rng(self.config.seed)
        counter = StepCounter(budget)
        d1, d2 = image.shape[:2]
        order = rng.permutation(d1 * d2 * NUM_CORNERS)
        try:
            for flat in order:
                corner = int(flat % NUM_CORNERS)
                location_index = int(flat // NUM_CORNERS)
                row, col = location_index // d2, location_index % d2
                perturbed = image.copy()
                perturbed[row, col] = RGB_CORNERS[corner]
                scores = yield counter.submit(perturbed)
                winner = int(np.argmax(scores))
                won = (
                    winner != true_class
                    if target_class is None
                    else winner == target_class
                )
                if won:
                    return AttackResult(
                        success=True,
                        queries=counter.count,
                        location=(row, col),
                        perturbation=RGB_CORNERS[corner],
                        adversarial_class=winner,
                    )
        except QueryBudgetExceeded:
            pass
        return AttackResult(success=False, queries=counter.count)
