"""Common attack interface.

Every attack -- the paper's sketch programs and all baselines -- exposes
one method::

    attack(classifier, image, true_class, budget=None) -> AttackResult

where ``classifier`` maps an (H, W, 3) image to a score vector and
``budget`` caps the number of queries.  This uniformity is what lets the
evaluation harness sweep approaches for Figure 3 and Tables 1-2 with one
code path.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

Classifier = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class AttackResult:
    """The outcome of attacking one image.

    ``queries`` is the number of classifier submissions actually posed
    (for failures under a budget, the number posed before giving up).
    ``location`` / ``perturbation`` describe the successful pixel write
    when ``success``; the perturbation is the full RGB value written.
    ``error`` tags degraded results the execution engine recorded on the
    attack's behalf (escaped budget exhaustion, worker timeout/crash);
    it is always ``None`` on well-behaved attack outcomes.
    """

    success: bool
    queries: int
    location: Optional[Tuple[int, int]] = None
    perturbation: Optional[np.ndarray] = None
    adversarial_class: Optional[int] = None
    error: Optional[str] = None

    def __post_init__(self):
        if self.queries < 0:
            raise ValueError("queries must be non-negative")
        if self.success and (self.location is None or self.perturbation is None):
            raise ValueError("successful results must carry location and perturbation")
        if self.success and self.error is not None:
            raise ValueError("successful results cannot carry an error tag")


class OnePixelAttack(abc.ABC):
    """Abstract base for all one-pixel attacks.

    Two complementary entry points share one search implementation:

    - :meth:`attack` -- the classic synchronous call used throughout the
      evaluation harness;
    - :meth:`steps` -- the same attack as a *generator* that yields
      :class:`~repro.core.stepping.Query` objects and receives score
      vectors, letting an external executor (e.g. the serving layer's
      micro-batching broker) own the forward passes.

    Attacks with incremental structure implement ``steps`` natively and
    define ``attack`` as ``drive_steps(self.steps(...), classifier)``;
    the default ``steps`` here adapts any remaining direct-call
    ``attack`` via a helper thread, so *every* attack is steppable.
    """

    #: Default speculation window for batch-native stepping.  ``None``
    #: (the library default) keeps ``steps()`` on the legacy scalar
    #: protocol; the serving layer and CLI opt into batching by passing
    #: ``batch_size=`` explicitly or setting this attribute.  Attacks
    #: without a native ``steps`` implementation ignore it.
    batch_size: Optional[int] = None

    @abc.abstractmethod
    def attack(
        self,
        classifier: Classifier,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
    ) -> AttackResult:
        """Attack one image under an optional query budget.

        ``target_class=None`` (the paper's setting) succeeds on any
        misclassification; a concrete target requires the classifier to
        output exactly that class.
        """

    def steps(
        self,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
        batch_size: Optional[int] = None,
    ):
        """The attack as a query-yielding generator.

        Yields :class:`~repro.core.stepping.Query`, expects the score
        vector via ``send``, and returns the :class:`AttackResult` as
        the generator's return value.  Driven generators are
        bit-identical to :meth:`attack` against the same classifier.

        ``batch_size`` opts into batch-native stepping for attacks with
        a native generator: ``None`` defers to :attr:`batch_size` on the
        instance, ``0`` forces the scalar protocol, ``N > 0`` allows
        speculative :class:`~repro.core.stepping.QueryBatch` yields of
        up to ``N`` queries.  The threaded fallback here is inherently
        scalar (one classifier call per yield), so it accepts and
        ignores the argument.
        """
        from repro.core.stepping import threaded_steps

        return threaded_steps(
            self, image, true_class, budget=budget, target_class=target_class
        )

    @property
    def name(self) -> str:
        return type(self).__name__

    @staticmethod
    def _validate(image: np.ndarray) -> None:
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError(f"image must be (H, W, 3), got {image.shape}")
