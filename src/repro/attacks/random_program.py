"""The Sketch+Random ablation baseline (Appendix C).

To isolate the value of the *stochastic search* (as opposed to the
sketch + conditions themselves), the paper compares OPPSLA against
sampling the same number of random well-typed instantiations and keeping
the one with the fewest queries on the training set.  This class mirrors
:class:`repro.core.synthesis.oppsla.Oppsla`'s interface so the two slot
into the same experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.dsl.ast import Program
from repro.core.dsl.grammar import Grammar
from repro.core.synthesis.oppsla import OppslaConfig, SynthesisResult
from repro.core.synthesis.score import (
    ProgramEvaluation,
    TrainingPair,
    evaluate_program,
)
from repro.core.synthesis.trace import SynthesisTrace


@dataclass(frozen=True)
class RandomSearchConfig:
    """How many random instantiations to draw, and evaluation knobs."""

    num_samples: int = 210  # matches the paper's 210 MH iterations
    per_image_budget: Optional[int] = None
    seed: int = 0


class RandomProgramSearch:
    """Sample N random programs, return the best on the training set."""

    def __init__(self, config: RandomSearchConfig = None):
        self.config = config or RandomSearchConfig()

    def synthesize(
        self,
        classifier: Callable[[np.ndarray], np.ndarray],
        training_pairs: Sequence[TrainingPair],
    ) -> SynthesisResult:
        training_pairs = list(training_pairs)
        if not training_pairs:
            raise ValueError("training set must be non-empty")
        if self.config.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        shape = training_pairs[0][0].shape[:2]
        grammar = Grammar(shape)
        rng = np.random.default_rng(self.config.seed)
        trace = SynthesisTrace()
        best_program: Optional[Program] = None
        best_eval: Optional[ProgramEvaluation] = None
        for iteration in range(self.config.num_samples):
            program = grammar.random_program(rng)
            evaluation = evaluate_program(
                program,
                classifier,
                training_pairs,
                per_image_budget=self.config.per_image_budget,
            )
            trace.total_queries += evaluation.total_queries
            trace.iterations = iteration + 1
            if best_eval is None or _better(evaluation, best_eval):
                best_program, best_eval = program, evaluation
                trace.record_accept(iteration, program, evaluation)
        return SynthesisResult(
            final_program=best_program,
            final_evaluation=best_eval,
            best_program=best_program,
            best_evaluation=best_eval,
            trace=trace,
            config=OppslaConfig(
                max_iterations=self.config.num_samples,
                per_image_budget=self.config.per_image_budget,
                seed=self.config.seed,
            ),
        )


def _better(candidate: ProgramEvaluation, incumbent: ProgramEvaluation) -> bool:
    """More successes wins; then the lower failure-penalized average.

    The penalized average (rather than the successes-only one) keeps the
    comparison meaningful under a ``per_image_budget``; see
    :attr:`ProgramEvaluation.penalized_avg_queries`.
    """
    if candidate.successes != incumbent.successes:
        return candidate.successes > incumbent.successes
    return candidate.penalized_avg_queries < incumbent.penalized_avg_queries
