"""SuOPA: the original One Pixel Attack (Su et al., 2017).

Differential evolution over candidate vectors ``(row, col, r, g, b)``:
positions range over the pixel grid and colors over the *full* ``[0, 1]``
cube (not just the corners -- the paper highlights this difference).  The
fitness to minimize is the true class's confidence; DE/rand/1 mutation
with ``F = 0.5`` produces one child per parent each generation, and the
child replaces the parent when fitter.  The attack stops early as soon as
any evaluated candidate is misclassified.

Because the whole initial population is evaluated before any evolution,
the minimal number of queries equals ``population_size`` -- the "minimum
400 queries" behaviour the paper notes in Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks.base import AttackResult, Classifier, OnePixelAttack
from repro.core.stepping import AttackSteps, StepCounter, drive_steps
from repro.classifier.blackbox import QueryBudgetExceeded


@dataclass(frozen=True)
class SuOPAConfig:
    """Hyper-parameters of the differential-evolution attack."""

    population_size: int = 400
    max_generations: int = 100
    differential_weight: float = 0.5  # F in DE/rand/1
    color_mean: float = 0.5
    color_std: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.population_size < 4:
            raise ValueError("DE/rand/1 needs a population of at least 4")
        if not 0 < self.differential_weight <= 2:
            raise ValueError("differential weight must be in (0, 2]")


class SuOPA(OnePixelAttack):
    """One Pixel Attack via differential evolution."""

    def __init__(self, config: SuOPAConfig = None):
        self.config = config or SuOPAConfig()

    @property
    def name(self) -> str:
        return "SuOPA"

    def attack(
        self,
        classifier: Classifier,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
    ) -> AttackResult:
        return drive_steps(
            self.steps(image, true_class, budget=budget, target_class=target_class),
            classifier,
        )

    def steps(
        self,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
    ) -> AttackSteps:
        self._validate(image)
        config = self.config
        rng = np.random.default_rng(config.seed)
        counter = StepCounter(budget)
        d1, d2 = image.shape[:2]

        def evaluate(candidate: np.ndarray):
            """Fitness to minimize, or a success result (subgenerator).

            Untargeted fitness is the true class's confidence; targeted
            fitness is the target's negated confidence.
            """
            row, col = int(round(candidate[0])), int(round(candidate[1]))
            perturbed = image.copy()
            perturbed[row, col] = candidate[2:5]
            scores = yield counter.submit(perturbed)
            winner = int(np.argmax(scores))
            won = winner != true_class if target_class is None else winner == target_class
            if won:
                return None, AttackResult(
                    success=True,
                    queries=counter.count,
                    location=(row, col),
                    perturbation=candidate[2:5].copy(),
                    adversarial_class=winner,
                )
            if target_class is None:
                return float(scores[true_class]), None
            return -float(scores[target_class]), None

        def clip(candidate: np.ndarray) -> np.ndarray:
            candidate[0] = np.clip(candidate[0], 0, d1 - 1)
            candidate[1] = np.clip(candidate[1], 0, d2 - 1)
            candidate[2:5] = np.clip(candidate[2:5], 0.0, 1.0)
            return candidate

        size = config.population_size
        population = np.empty((size, 5))
        population[:, 0] = rng.uniform(0, d1 - 1, size=size)
        population[:, 1] = rng.uniform(0, d2 - 1, size=size)
        population[:, 2:5] = np.clip(
            rng.normal(config.color_mean, config.color_std, size=(size, 3)), 0.0, 1.0
        )
        fitness = np.empty(size)

        try:
            for index in range(size):
                value, result = yield from evaluate(population[index])
                if result is not None:
                    return result
                fitness[index] = value
            for _ in range(config.max_generations):
                for index in range(size):
                    r1, r2, r3 = _distinct_indices(rng, size, exclude=index)
                    mutant = population[r1] + config.differential_weight * (
                        population[r2] - population[r3]
                    )
                    mutant = clip(mutant)
                    value, result = yield from evaluate(mutant)
                    if result is not None:
                        return result
                    if value < fitness[index]:
                        population[index] = mutant
                        fitness[index] = value
        except QueryBudgetExceeded:
            pass
        return AttackResult(success=False, queries=counter.count)


def _distinct_indices(rng: np.random.Generator, size: int, exclude: int):
    """Three distinct population indices, all different from ``exclude``."""
    choices = rng.choice(size - 1, size=3, replace=False)
    # shift values >= exclude up by one to skip the excluded index
    return tuple(int(c) + (1 if c >= exclude else 0) for c in choices)
