"""SuOPA: the original One Pixel Attack (Su et al., 2017).

Differential evolution over candidate vectors ``(row, col, r, g, b)``:
positions range over the pixel grid and colors over the *full* ``[0, 1]``
cube (not just the corners -- the paper highlights this difference).  The
fitness to minimize is the true class's confidence; DE/rand/1 mutation
with ``F = 0.5`` produces one child per parent each generation, and the
child replaces the parent when fitter.  The attack stops early as soon as
any evaluated candidate is misclassified.

Because the whole initial population is evaluated before any evolution,
the minimal number of queries equals ``population_size`` -- the "minimum
400 queries" behaviour the paper notes in Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks.base import AttackResult, Classifier, OnePixelAttack
from repro.core.stepping import (
    AttackSteps,
    Query,
    QueryBatch,
    StepCounter,
    drive_steps,
    resolve_batch_window,
)
from repro.classifier.blackbox import QueryBudgetExceeded


@dataclass(frozen=True)
class SuOPAConfig:
    """Hyper-parameters of the differential-evolution attack."""

    population_size: int = 400
    max_generations: int = 100
    differential_weight: float = 0.5  # F in DE/rand/1
    color_mean: float = 0.5
    color_std: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.population_size < 4:
            raise ValueError("DE/rand/1 needs a population of at least 4")
        if not 0 < self.differential_weight <= 2:
            raise ValueError("differential weight must be in (0, 2]")


class SuOPA(OnePixelAttack):
    """One Pixel Attack via differential evolution."""

    def __init__(self, config: SuOPAConfig = None):
        self.config = config or SuOPAConfig()

    @property
    def name(self) -> str:
        return "SuOPA"

    def attack(
        self,
        classifier: Classifier,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
    ) -> AttackResult:
        return drive_steps(
            self.steps(image, true_class, budget=budget, target_class=target_class),
            classifier,
        )

    def steps(
        self,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> AttackSteps:
        """DE as a generator; batches population/generation evaluations.

        With a batch window, the initial population and each DE
        generation are evaluated in blocks of up to ``batch_size``
        speculative queries.  A generation's random index draws are
        score-independent, so they are precomputed in index order (the
        rng stream is identical to the scalar path's); mutants are built
        from the population *as of batch construction*, and a block is
        rebuilt from the first member whose donors ``{r1, r2, r3}`` were
        replaced by an earlier consumption -- the precomputed draws are
        reused, never redrawn, so the rebuilt mutant is exactly the
        scalar path's.  Charges happen per consumed member, keeping
        query counts and truncation points bit-identical.
        """
        self._validate(image)
        if batch_size is None:
            batch_size = self.batch_size
        window = resolve_batch_window(batch_size)
        config = self.config
        rng = np.random.default_rng(config.seed)
        counter = StepCounter(budget)
        d1, d2 = image.shape[:2]

        def perturbed_for(candidate: np.ndarray) -> np.ndarray:
            row, col = int(round(candidate[0])), int(round(candidate[1]))
            perturbed = image.copy()
            perturbed[row, col] = candidate[2:5]
            return perturbed

        def judge(candidate: np.ndarray, scores):
            """Fitness to minimize, or a success result (pure).

            Untargeted fitness is the true class's confidence; targeted
            fitness is the target's negated confidence.
            """
            winner = int(np.argmax(scores))
            won = winner != true_class if target_class is None else winner == target_class
            if won:
                row, col = int(round(candidate[0])), int(round(candidate[1]))
                return None, AttackResult(
                    success=True,
                    queries=counter.count,
                    location=(row, col),
                    perturbation=candidate[2:5].copy(),
                    adversarial_class=winner,
                )
            if target_class is None:
                return float(scores[true_class]), None
            return -float(scores[target_class]), None

        def evaluate(candidate: np.ndarray):
            """Scalar-mode evaluation of one candidate (subgenerator)."""
            scores = yield counter.submit(perturbed_for(candidate))
            return judge(candidate, scores)

        def clip(candidate: np.ndarray) -> np.ndarray:
            candidate[0] = np.clip(candidate[0], 0, d1 - 1)
            candidate[1] = np.clip(candidate[1], 0, d2 - 1)
            candidate[2:5] = np.clip(candidate[2:5], 0.0, 1.0)
            return candidate

        def block_span(remaining: int) -> int:
            """Next block size: the window, capped by work and budget."""
            if counter.allowance == 0:
                counter.charge()  # raises at the scalar stop point
            span = min(window, remaining)
            if counter.budget is not None:
                span = min(span, counter.allowance)
            return span

        size = config.population_size
        population = np.empty((size, 5))
        population[:, 0] = rng.uniform(0, d1 - 1, size=size)
        population[:, 1] = rng.uniform(0, d2 - 1, size=size)
        population[:, 2:5] = np.clip(
            rng.normal(config.color_mean, config.color_std, size=(size, 3)), 0.0, 1.0
        )
        fitness = np.empty(size)

        try:
            if window <= 0:
                for index in range(size):
                    value, result = yield from evaluate(population[index])
                    if result is not None:
                        return result
                    fitness[index] = value
            else:
                position = 0
                while position < size:
                    span = block_span(size - position)
                    members = range(position, position + span)
                    batch = QueryBatch(tuple(
                        Query(perturbed_for(population[i])) for i in members
                    ))
                    answers = np.asarray((yield batch), dtype=np.float64)
                    for offset, index in enumerate(members):
                        counter.charge()
                        batch.note(batch.queries[offset], answers[offset])
                        value, result = judge(population[index], answers[offset])
                        if result is not None:
                            return result
                        fitness[index] = value
                    position += span
            for _ in range(config.max_generations):
                if window <= 0:
                    for index in range(size):
                        r1, r2, r3 = _distinct_indices(rng, size, exclude=index)
                        mutant = population[r1] + config.differential_weight * (
                            population[r2] - population[r3]
                        )
                        mutant = clip(mutant)
                        value, result = yield from evaluate(mutant)
                        if result is not None:
                            return result
                        if value < fitness[index]:
                            population[index] = mutant
                            fitness[index] = value
                    continue
                # Batched generation.  The draws are score-independent,
                # so precomputing them in index order leaves the rng
                # stream exactly as the scalar path consumed it.
                draws = [
                    _distinct_indices(rng, size, exclude=index)
                    for index in range(size)
                ]
                index = 0
                while index < size:
                    span = block_span(size - index)
                    members = list(range(index, index + span))
                    mutants = []
                    for j in members:
                        r1, r2, r3 = draws[j]
                        mutant = population[r1] + config.differential_weight * (
                            population[r2] - population[r3]
                        )
                        mutants.append(clip(mutant))
                    batch = QueryBatch(tuple(
                        Query(perturbed_for(mutant)) for mutant in mutants
                    ))
                    answers = np.asarray((yield batch), dtype=np.float64)
                    replaced = set()
                    for offset, j in enumerate(members):
                        if replaced.intersection(draws[j]):
                            # Donors changed since this mutant was built:
                            # the speculation is stale.  Discard the rest
                            # of the block (uncharged) and rebuild from j
                            # with the same draws and fresh population.
                            break
                        counter.charge()
                        batch.note(batch.queries[offset], answers[offset])
                        value, result = judge(mutants[offset], answers[offset])
                        if result is not None:
                            return result
                        if value < fitness[j]:
                            population[j] = mutants[offset]
                            fitness[j] = value
                            replaced.add(j)
                        index = j + 1
        except QueryBudgetExceeded:
            pass
        return AttackResult(success=False, queries=counter.count)


def _distinct_indices(rng: np.random.Generator, size: int, exclude: int):
    """Three distinct population indices, all different from ``exclude``."""
    choices = rng.choice(size - 1, size=3, replace=False)
    # shift values >= exclude up by one to skip the excluded index
    return tuple(int(c) + (1 if c >= exclude else 0) for c in choices)
