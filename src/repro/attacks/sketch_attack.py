"""Adapter presenting a sketch program as a :class:`OnePixelAttack`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import AttackResult, Classifier, OnePixelAttack
from repro.core.dsl.ast import Program
from repro.core.sketch import OnePixelSketch
from repro.core.stepping import AttackSteps, drive_steps


class SketchAttack(OnePixelAttack):
    """A synthesized (or hand-written) adversarial program as an attack."""

    def __init__(self, program: Program, label: str = "OPPSLA"):
        self.program = program
        self.sketch = OnePixelSketch(program)
        self._label = label

    @property
    def name(self) -> str:
        return self._label

    def attack(
        self,
        classifier: Classifier,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
    ) -> AttackResult:
        return drive_steps(
            self.steps(image, true_class, budget=budget, target_class=target_class),
            classifier,
        )

    def steps(
        self,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> AttackSteps:
        self._validate(image)
        if batch_size is None:
            batch_size = self.batch_size
        result = yield from self.sketch.steps(
            image,
            true_class,
            budget=budget,
            target_class=target_class,
            batch_size=batch_size,
        )
        if result.success:
            return AttackResult(
                success=True,
                queries=result.queries,
                location=result.pair.location,
                perturbation=result.pair.perturbation,
                adversarial_class=result.adversarial_class,
            )
        return AttackResult(success=False, queries=result.queries)
