"""The Sketch+False ablation baseline (Appendix C).

Instantiating every condition with ``False`` disables all reordering, so
the attack checks pairs in the fixed initial prioritization (farthest
corner first, center-out).  It poses no synthesis queries at all, which
is why the paper uses it as the zero-cost reference point in Figure 4.
"""

from __future__ import annotations

from repro.attacks.sketch_attack import SketchAttack
from repro.core.dsl.ast import Program


def false_program() -> Program:
    """The fixed-prioritization program: all four conditions are ``False``."""
    return Program.constant(False)


class FixedSketchAttack(SketchAttack):
    """The sketch with the constant-``False`` program."""

    def __init__(self):
        super().__init__(false_program(), label="Sketch+False")
