"""Sparse-RS (Croce et al., AAAI 2022), specialized to one pixel.

Sparse-RS is the random-search framework the paper treats as the
query-minimizing state of the art.  For the L0 / pixel threat model with
``k`` perturbed pixels it keeps a current set of (location, color) choices
with colors restricted to the RGB-cube corners, and at each step resamples
the locations and/or colors of a random subset, accepting the candidate
when the margin loss does not increase.  With ``k = 1`` the subset is the
single pixel, so a step either moves the pixel (keeping its color) or
recolors it (keeping its location); the probability of a location move
decays over time, mirroring Sparse-RS's shrinking resampling schedule.

The margin loss is the standard untargeted objective
``f(x')_{c_x} - max_{c != c_x} f(x')_c``; the attack succeeds as soon as
it goes negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.attacks.base import AttackResult, Classifier, OnePixelAttack
from repro.classifier.blackbox import CountingClassifier, QueryBudgetExceeded
from repro.core.geometry import NUM_CORNERS, RGB_CORNERS


@dataclass(frozen=True)
class SparseRSConfig:
    """Hyper-parameters of the one-pixel Sparse-RS.

    ``alpha_init`` and ``schedule_half_life`` shape the probability of
    proposing a location move (vs. a color move) at step ``t``:
    ``p_loc(t) = max(alpha_min, alpha_init * 0.5^(t / half_life))``.
    Early steps explore locations aggressively; later steps mostly
    fine-tune the color, as in the original's decaying schedule.
    """

    alpha_init: float = 0.8
    alpha_min: float = 0.1
    schedule_half_life: int = 200
    max_steps: int = 20000
    seed: int = 0


def margin(
    scores: np.ndarray, true_class: int, target_class: int = None
) -> float:
    """The loss the random search descends; negative iff the attack won.

    Untargeted: ``f_cx - max_{c != cx} f_c`` (negative iff misclassified).
    Targeted: ``max_{c != t} f_c - f_t`` (negative iff classified as t).
    """
    if target_class is None:
        others = np.delete(scores, true_class)
        return float(scores[true_class] - others.max())
    others = np.delete(scores, target_class)
    return float(others.max() - scores[target_class])


class SparseRS(OnePixelAttack):
    """The one-pixel specialization of Sparse-RS."""

    def __init__(self, config: SparseRSConfig = None):
        self.config = config or SparseRSConfig()

    @property
    def name(self) -> str:
        return "Sparse-RS"

    def attack(
        self,
        classifier: Classifier,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
    ) -> AttackResult:
        self._validate(image)
        config = self.config
        rng = np.random.default_rng(config.seed)
        counting = CountingClassifier(classifier, budget=budget)
        d1, d2 = image.shape[:2]

        def query(location: Tuple[int, int], corner: int):
            perturbed = image.copy()
            perturbed[location[0], location[1]] = RGB_CORNERS[corner]
            scores = counting(perturbed)
            loss = margin(scores, true_class, target_class)
            if loss < 0:
                return loss, AttackResult(
                    success=True,
                    queries=counting.count,
                    location=location,
                    perturbation=RGB_CORNERS[corner],
                    adversarial_class=int(np.argmax(scores)),
                )
            return loss, None

        try:
            location = (int(rng.integers(0, d1)), int(rng.integers(0, d2)))
            corner = int(rng.integers(0, NUM_CORNERS))
            best_loss, result = query(location, corner)
            if result is not None:
                return result
            for step in range(config.max_steps):
                p_loc = max(
                    config.alpha_min,
                    config.alpha_init
                    * 0.5 ** (step / max(config.schedule_half_life, 1)),
                )
                if rng.uniform() < p_loc:
                    candidate_location = (
                        int(rng.integers(0, d1)),
                        int(rng.integers(0, d2)),
                    )
                    candidate_corner = corner
                else:
                    candidate_location = location
                    candidate_corner = int(rng.integers(0, NUM_CORNERS))
                    if candidate_corner == corner:
                        candidate_corner = (candidate_corner + 1) % NUM_CORNERS
                if candidate_location == location and candidate_corner == corner:
                    continue
                loss, result = query(candidate_location, candidate_corner)
                if result is not None:
                    return result
                if loss <= best_loss:
                    best_loss = loss
                    location = candidate_location
                    corner = candidate_corner
        except QueryBudgetExceeded:
            pass
        return AttackResult(success=False, queries=counting.count)
