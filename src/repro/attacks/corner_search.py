"""A one-pixel CornerSearch baseline (Croce & Hein, ICCV 2019).

CornerSearch attacks in two phases: it first scores candidate single-
pixel corner writes by their effect on the margin loss, then tries
combinations of the most promising candidates.  Specialized to one pixel
the second phase degenerates into checking the best-ranked candidates
exhaustively, so the attack becomes:

1. *probe phase*: query a sampled subset of (location, corner) pairs and
   rank them by margin loss (one query each);
2. *exploit phase*: walk the remaining pairs in order of the loss
   observed at their location (pairs at locations that lowered the
   margin come first).

Unlike the paper's sketch, CornerSearch spends a fixed upfront probe
budget before exploiting -- the query profile the paper's introduction
argues against -- which makes it a useful contrast baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks.base import AttackResult, Classifier, OnePixelAttack
from repro.attacks.sparse_rs import margin
from repro.classifier.blackbox import CountingClassifier, QueryBudgetExceeded
from repro.core.geometry import NUM_CORNERS, RGB_CORNERS


@dataclass(frozen=True)
class CornerSearchConfig:
    """Hyper-parameters for the one-pixel CornerSearch."""

    probe_fraction: float = 0.15  # fraction of locations probed upfront
    seed: int = 0

    def __post_init__(self):
        if not 0.0 < self.probe_fraction <= 1.0:
            raise ValueError("probe_fraction must be in (0, 1]")


class CornerSearch(OnePixelAttack):
    """One-pixel CornerSearch: probe, rank, exploit."""

    def __init__(self, config: CornerSearchConfig = None):
        self.config = config or CornerSearchConfig()

    @property
    def name(self) -> str:
        return "CornerSearch"

    def attack(
        self,
        classifier: Classifier,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
        target_class: Optional[int] = None,
    ) -> AttackResult:
        self._validate(image)
        rng = np.random.default_rng(self.config.seed)
        counting = CountingClassifier(classifier, budget=budget)
        d1, d2 = image.shape[:2]

        def query(row: int, col: int, corner: int):
            perturbed = image.copy()
            perturbed[row, col] = RGB_CORNERS[corner]
            scores = counting(perturbed)
            loss = margin(scores, true_class, target_class)
            if loss < 0:
                return loss, AttackResult(
                    success=True,
                    queries=counting.count,
                    location=(row, col),
                    perturbation=RGB_CORNERS[corner],
                    adversarial_class=int(np.argmax(scores)),
                )
            return loss, None

        num_locations = d1 * d2
        num_probes = max(1, int(round(self.config.probe_fraction * num_locations)))
        probe_locations = rng.choice(num_locations, size=num_probes, replace=False)
        location_loss = np.full(num_locations, np.inf)
        probed_corner = {}

        try:
            # phase 1: one random corner per probed location
            for flat in probe_locations:
                row, col = int(flat // d2), int(flat % d2)
                corner = int(rng.integers(0, NUM_CORNERS))
                loss, result = query(row, col, corner)
                if result is not None:
                    return result
                location_loss[flat] = loss
                probed_corner[int(flat)] = corner

            # phase 2: exploit -- walk all remaining pairs, probed
            # locations first (ascending observed loss), then the rest in
            # a random order
            probed = [int(f) for f in probe_locations]
            probed.sort(key=lambda f: location_loss[f])
            unprobed = [
                f for f in rng.permutation(num_locations)
                if np.isinf(location_loss[f])
            ]
            for flat in probed + [int(f) for f in unprobed]:
                row, col = int(flat // d2), int(flat % d2)
                skip = probed_corner.get(flat)
                for corner in range(NUM_CORNERS):
                    if corner == skip:
                        continue
                    _, result = query(row, col, corner)
                    if result is not None:
                        return result
        except QueryBudgetExceeded:
            pass
        return AttackResult(success=False, queries=counting.count)
