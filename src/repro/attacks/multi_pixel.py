"""Greedy few-pixel attacks built on any one-pixel attack.

An extension beyond the paper's scope (its related-work section surveys
few-pixel attacks such as CornerSearch and Sparse-RS with k > 1): when a
single pixel is not enough, greedily commit the best pixel found so far
and re-attack the already-perturbed image, up to ``max_pixels`` rounds.

"Best pixel" for a failed round is the queried candidate that reduced the
true class's score the most; committing it monotonically erodes the
classifier's confidence, which is why the greedy loop converges quickly
on networks where single-pixel attacks almost succeed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.attacks.base import AttackResult, Classifier, OnePixelAttack
from repro.classifier.blackbox import CountingClassifier, QueryBudgetExceeded
from repro.core.initorder import initial_order


@dataclass(frozen=True)
class MultiPixelResult:
    """Outcome of a few-pixel attack.

    ``pixels`` lists the committed (location, value) writes in order;
    the adversarial image applies all of them.
    """

    success: bool
    queries: int
    pixels: Tuple[Tuple[Tuple[int, int], np.ndarray], ...]
    adversarial_class: Optional[int] = None

    @property
    def num_pixels(self) -> int:
        return len(self.pixels)


class GreedyMultiPixel:
    """Few-pixel attack: iterate a one-pixel attack, committing greedily.

    Parameters
    ----------
    base_attack:
        Any :class:`~repro.attacks.base.OnePixelAttack`; its per-round
        query behaviour is inherited.
    max_pixels:
        Maximum number of pixels to perturb (the paper's k).
    round_budget:
        Query cap per one-pixel round; also the exploration depth of the
        greedy score probe when a round fails.
    """

    def __init__(
        self,
        base_attack: OnePixelAttack,
        max_pixels: int = 3,
        round_budget: int = 512,
    ):
        if max_pixels < 1:
            raise ValueError("max_pixels must be at least 1")
        if round_budget < 1:
            raise ValueError("round_budget must be positive")
        self.base_attack = base_attack
        self.max_pixels = max_pixels
        self.round_budget = round_budget

    @property
    def name(self) -> str:
        return f"Greedy-{self.max_pixels}px[{self.base_attack.name}]"

    def attack(
        self,
        classifier: Classifier,
        image: np.ndarray,
        true_class: int,
        budget: Optional[int] = None,
    ) -> MultiPixelResult:
        counting = CountingClassifier(classifier, budget=budget)
        current = image.copy()
        committed: List[Tuple[Tuple[int, int], np.ndarray]] = []
        try:
            for _ in range(self.max_pixels):
                round_cap = self.round_budget
                if counting.remaining is not None:
                    round_cap = min(round_cap, counting.remaining)
                result = self.base_attack.attack(
                    counting, current, true_class, budget=round_cap
                )
                if result.success:
                    committed.append((result.location, result.perturbation))
                    return MultiPixelResult(
                        success=True,
                        queries=counting.count,
                        pixels=tuple(committed),
                        adversarial_class=result.adversarial_class,
                    )
                best = self._best_probe(counting, current, true_class)
                if best is None:
                    break
                location, value = best
                current = current.copy()
                current[location[0], location[1]] = value
                committed.append((location, value))
        except QueryBudgetExceeded:
            pass
        return MultiPixelResult(
            success=False, queries=counting.count, pixels=tuple(committed)
        )

    def _best_probe(
        self,
        counting: CountingClassifier,
        image: np.ndarray,
        true_class: int,
    ) -> Optional[Tuple[Tuple[int, int], np.ndarray]]:
        """The corner write with the largest true-class confidence drop.

        Probes the first ``round_budget`` pairs of the sketch's initial
        ordering (farthest corners, center-out), so probe queries follow
        the same prioritization the paper's sketch uses.
        """
        best_drop = -np.inf
        best = None
        clean = counting(image)
        for pair in initial_order(image)[: self.round_budget]:
            if counting.remaining is not None and counting.remaining == 0:
                break
            scores = counting(pair.apply(image))
            drop = float(clean[true_class] - scores[true_class])
            if drop > best_drop:
                best_drop = drop
                best = (pair.location, pair.perturbation)
        return best
