"""Attack implementations: the paper's comparators and ablation baselines."""

from repro.attacks.base import AttackResult, OnePixelAttack
from repro.attacks.corner_search import CornerSearch, CornerSearchConfig
from repro.attacks.fixed_sketch import FixedSketchAttack, false_program
from repro.attacks.multi_pixel import GreedyMultiPixel, MultiPixelResult
from repro.attacks.random_program import RandomProgramSearch, RandomSearchConfig
from repro.attacks.sketch_attack import SketchAttack
from repro.attacks.sparse_rs import SparseRS, SparseRSConfig
from repro.attacks.su_opa import SuOPA, SuOPAConfig

__all__ = [
    "AttackResult",
    "OnePixelAttack",
    "SketchAttack",
    "FixedSketchAttack",
    "false_program",
    "RandomProgramSearch",
    "RandomSearchConfig",
    "SparseRS",
    "SparseRSConfig",
    "SuOPA",
    "SuOPAConfig",
    "GreedyMultiPixel",
    "MultiPixelResult",
    "CornerSearch",
    "CornerSearchConfig",
]
