"""The black-box query boundary.

The paper's threat model gives the attacker nothing but the classifier's
output score vector for submitted images, and success is measured in the
*number of submissions*.  This module makes that boundary explicit:

- :class:`NetworkClassifier` adapts a trained :class:`repro.nn.Module`
  to the ``image (H, W, 3) -> scores (C,)`` interface (converting layout
  and applying softmax so scores are class confidences).
- :class:`CountingClassifier` wraps any classifier callable, counts every
  query, and optionally enforces a hard budget by raising
  :class:`QueryBudgetExceeded`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.nn.functional import softmax
from repro.nn.module import Module

Classifier = Callable[[np.ndarray], np.ndarray]


def batch_scores(classifier: Classifier, images) -> np.ndarray:
    """Score many images through any classifier, batched when possible.

    Uses the classifier's native ``batch`` method when it has one;
    otherwise falls back to stacking per-image calls.  The fallback
    guarantees *bit-identical* scores to sequential single-image queries,
    which is what the serving determinism tests rely on; a native batch
    path may differ in the last float ulps (different BLAS reduction
    order) while remaining semantically equivalent.

    ``images`` may be a list of (H, W, 3) arrays or an (N, H, W, 3)
    array; an empty input yields a ``(0, 0)``-or-wider empty array
    without querying the model.

    The result always honours the batch contract regardless of how
    sloppy the underlying classifier is: ``float64`` dtype, shape
    ``(len(images), num_classes)`` -- including for single-image
    batches, where a ``(num_classes,)`` return from a native ``batch``
    method or a list-returning ``__call__`` used to leak through and
    poison downstream per-row assembly (``CachedClassifier.batch``).
    """
    if not isinstance(images, np.ndarray):
        images = list(images)
    if len(images) == 0:
        return np.zeros((0, 0), dtype=np.float64)
    batch_method = getattr(classifier, "batch", None)
    if batch_method is not None:
        scores = np.asarray(batch_method(np.asarray(images)), dtype=np.float64)
    else:
        scores = np.stack([
            np.asarray(classifier(image), dtype=np.float64).reshape(-1)
            for image in images
        ])
    if scores.ndim == 1:
        scores = scores.reshape(1, -1)
    if scores.shape[0] != len(images):
        raise ValueError(
            f"batch classifier returned {scores.shape[0]} score rows "
            f"for {len(images)} images"
        )
    return scores


class _Unchanged:
    """Sentinel type for :meth:`CountingClassifier.reset`'s default."""

    def __repr__(self) -> str:
        return "<budget unchanged>"


#: Default for ``CountingClassifier.reset(budget=...)``: keep the current
#: budget.  A dedicated object (not a string or ``None``) so every actual
#: budget value -- including odd user-supplied ones -- stays expressible.
_UNCHANGED = _Unchanged()


def _validated_budget(budget: Optional[int]) -> Optional[int]:
    """``budget`` as a plain non-negative int, or ``None`` for uncapped."""
    if budget is None:
        return None
    if isinstance(budget, bool) or not isinstance(budget, (int, np.integer)):
        raise TypeError(
            f"budget must be an int or None, got {type(budget).__name__}"
        )
    if budget < 0:
        raise ValueError("budget must be non-negative")
    return int(budget)


class QueryBudgetExceeded(Exception):
    """Raised when a query would exceed the configured budget.

    Attributes
    ----------
    budget:
        The budget that was in force when the violation happened.
    """

    def __init__(self, budget: int):
        super().__init__(f"query budget of {budget} exhausted")
        self.budget = budget


class NetworkClassifier:
    """Adapt a trained network to the black-box image interface.

    The wrapped module is switched to evaluation mode once at construction;
    queries never mutate it.  Pass ``dtype=numpy.float32`` to cast the
    model for roughly 2x faster CPU inference (scores then differ from
    float64 in the last bits; returned scores are always float64).

    Pass ``freeze=True`` (or call :meth:`freeze` later) to enable the
    model's inference fast path: backward caches are skipped, eval-mode
    batch norms are folded into the preceding convolutions, and im2col
    buffers are reused across same-shape batches.  Scores stay within
    float tolerance of the unfrozen eval path and argmax decisions are
    identical, but they are no longer bit-identical; keep the default
    for runs pinned by bit-exact differential tests.
    """

    def __init__(self, model: Module, dtype=None, freeze: bool = False):
        self.model = model
        self.model.eval()
        self.dtype = dtype
        self._num_classes: Optional[int] = None
        if dtype is not None:
            self.model.astype(dtype)
        if freeze:
            self.model.freeze()

    def freeze(self) -> "NetworkClassifier":
        """Switch the wrapped model onto the inference fast path."""
        self.model.freeze()
        return self

    def unfreeze(self) -> "NetworkClassifier":
        """Return the wrapped model to the plain (bit-exact) eval path."""
        self.model.unfreeze()
        return self

    @property
    def frozen(self) -> bool:
        return self.model.frozen

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError(f"expected an (H, W, 3) image, got {image.shape}")
        batch = image.transpose(2, 0, 1)[None, ...]
        if self.dtype is not None:
            batch = batch.astype(self.dtype)
        logits = self.model(np.ascontiguousarray(batch))
        scores = softmax(logits.astype(np.float64), axis=1)[0]
        self._num_classes = scores.shape[0]
        return scores

    def batch(self, images: np.ndarray) -> np.ndarray:
        """Score a batch of (N, H, W, 3) images in one forward pass.

        Used by training-side evaluation (e.g. filtering misclassified
        test images) and by the serving layer's micro-batching broker.
        Attacks themselves still see only the single-image call; when a
        broker batches on their behalf it counts each image in the batch
        as one submission (see :meth:`CountingClassifier.batch`), so
        query accounting matches the sequential path.

        An empty ``(0, H, W, 3)`` batch returns an empty ``(0, C)`` score
        array without touching the model (whose layers may not tolerate
        zero-length batches).
        """
        images = np.asarray(images)
        if images.ndim != 4 or images.shape[3] != 3:
            raise ValueError(f"expected (N, H, W, 3) images, got {images.shape}")
        if images.shape[0] == 0:
            width = self._num_classes if self._num_classes is not None else 0
            return np.zeros((0, width), dtype=np.float64)
        batch = np.ascontiguousarray(images.transpose(0, 3, 1, 2))
        if self.dtype is not None:
            batch = batch.astype(self.dtype)
        scores = softmax(self.model(batch).astype(np.float64), axis=1)
        self._num_classes = scores.shape[1]
        return scores


class CountingClassifier:
    """Count (and optionally cap) the queries posed to a classifier.

    Parameters
    ----------
    classifier:
        Any callable mapping an (H, W, 3) image to a score vector.
    budget:
        If given, the ``budget + 1``-th query raises
        :class:`QueryBudgetExceeded` instead of executing.

    The counter can be read at any time via :attr:`count` and reset with
    :meth:`reset`; attacks use it as their sole query-accounting mechanism
    so reported numbers cannot drift from reality.
    """

    def __init__(self, classifier: Classifier, budget: Optional[int] = None):
        self._classifier = classifier
        self.budget = _validated_budget(budget)
        self.count = 0

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self.budget is not None and self.count >= self.budget:
            raise QueryBudgetExceeded(self.budget)
        self.count += 1
        return self._classifier(image)

    def batch(self, images) -> np.ndarray:
        """Score a batch, counting every image as one submission.

        Accounting matches the sequential path exactly: submitting N
        images costs N queries, and a batch that would cross the budget
        raises :class:`QueryBudgetExceeded` *after* consuming the
        remaining allowance (a sequential loop would have posed exactly
        ``remaining`` queries before tripping).  This is what keeps
        broker-batched runs and per-query runs reporting identical
        counts.
        """
        if not isinstance(images, np.ndarray):
            images = list(images)
        size = len(images)
        if self.budget is not None and self.count + size > self.budget:
            self.count = self.budget
            raise QueryBudgetExceeded(self.budget)
        self.count += size
        return batch_scores(self._classifier, images)

    @property
    def remaining(self) -> Optional[int]:
        """Queries left before the budget trips (``None`` if unbudgeted)."""
        if self.budget is None:
            return None
        return max(self.budget - self.count, 0)

    def reset(self, budget=_UNCHANGED) -> None:
        """Zero the counter; optionally install a new budget.

        Without ``budget`` the current budget is kept (the
        :data:`_UNCHANGED` sentinel, not a magic string, marks that
        case); ``budget=None`` removes the cap.
        """
        self.count = 0
        if budget is not _UNCHANGED:
            self.budget = _validated_budget(budget)

    def classify(self, image: np.ndarray) -> int:
        """Convenience: the argmax class of one (counted) query."""
        return int(np.argmax(self(image)))
