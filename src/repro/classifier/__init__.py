"""Black-box classifier interface with query accounting."""

from repro.classifier.blackbox import (
    CountingClassifier,
    NetworkClassifier,
    QueryBudgetExceeded,
)

__all__ = ["CountingClassifier", "NetworkClassifier", "QueryBudgetExceeded"]
