"""Black-box classifier interface with query accounting."""

from repro.classifier.blackbox import (
    CountingClassifier,
    NetworkClassifier,
    QueryBudgetExceeded,
    batch_scores,
)

__all__ = [
    "CountingClassifier",
    "NetworkClassifier",
    "QueryBudgetExceeded",
    "batch_scores",
]
