"""Cheap deterministic classifiers for tests and examples.

Unit tests of the sketch, DSL and synthesizer need a classifier that is
(1) orders of magnitude faster than a CNN forward pass, (2) deterministic,
and (3) genuinely attackable by a one-pixel perturbation with a known
ground truth.  These toy classifiers satisfy all three while honouring
exactly the same ``image (H, W, 3) -> scores (C,)`` interface as the real
networks.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import softmax


class LatencyClassifier:
    """Add a fixed per-query delay to any classifier.

    Real black-box attacks query a *remote* oracle, so wall-clock cost is
    dominated by round-trip latency rather than compute.  Wrapping a toy
    classifier in this simulates that regime, which is what the runtime
    scaling benchmark measures: latency-bound queries parallelize across
    worker processes even on a single CPU.
    """

    def __init__(self, classifier, latency: float = 0.001):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._classifier = classifier
        self.latency = latency

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self.latency:
            time.sleep(self.latency)
        return self._classifier(image)

    def batch(self, images) -> np.ndarray:
        """Score a whole batch for a *single* round trip.

        A remote oracle charges latency per request, not per image, so a
        batched submission pays the delay once -- exactly the economics
        the serving layer's micro-batching broker exploits.  Scores come
        from per-image calls on the wrapped classifier (via
        :func:`~repro.classifier.blackbox.batch_scores`), so they are
        bit-identical to sequential single-image queries.
        """
        from repro.classifier.blackbox import batch_scores

        if len(images) and self.latency:
            time.sleep(self.latency)
        return batch_scores(self._classifier, images)


class LinearPixelClassifier:
    """Scores are a fixed random linear map of the flattened image.

    Every pixel channel has a nonzero weight on every class, so a one-pixel
    change moves all scores linearly; with a ``temperature`` small enough,
    some images sit close to a boundary and are one-pixel attackable.
    """

    def __init__(
        self,
        image_shape: Tuple[int, int, int],
        num_classes: int,
        seed: int = 0,
        temperature: float = 1.0,
    ):
        if len(image_shape) != 3 or image_shape[2] != 3:
            raise ValueError(f"image_shape must be (H, W, 3), got {image_shape}")
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        rng = np.random.default_rng(seed)
        dim = int(np.prod(image_shape))
        self.image_shape = tuple(image_shape)
        self.num_classes = num_classes
        self.temperature = temperature
        self.weight = rng.normal(0.0, 1.0 / np.sqrt(dim), size=(num_classes, dim))
        self.bias = rng.normal(0.0, 0.1, size=num_classes)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if image.shape != self.image_shape:
            raise ValueError(
                f"expected image of shape {self.image_shape}, got {image.shape}"
            )
        logits = self.weight @ image.reshape(-1) + self.bias
        return softmax(logits / self.temperature)


class SmoothLinearClassifier:
    """A linear classifier whose weights vary smoothly over the image.

    Neighbouring pixels get correlated weights (a sum of low-frequency
    sinusoids), so nearby pixels have similar attack leverage -- the
    locality property Vargas & Su (2020) report for CIFAR-10 networks and
    the reason the sketch's neighbour-reordering conditions pay off.
    Unlike :class:`LinearPixelClassifier`, adversarial programs synthesized
    against this classifier genuinely generalize across images.

    ``hotspot`` optionally concentrates the leverage in a Gaussian bump at
    the given normalized (x, y) position (in [-1, 1]^2).  An off-center
    hotspot defeats the sketch's center-out default ordering, giving the
    synthesizer real headroom to exploit.
    """

    def __init__(
        self,
        image_shape: Tuple[int, int, int],
        num_classes: int,
        seed: int = 0,
        components: int = 3,
        temperature: float = 1.0,
        hotspot: Optional[Tuple[float, float]] = None,
        hotspot_width: float = 0.35,
    ):
        if len(image_shape) != 3 or image_shape[2] != 3:
            raise ValueError(f"image_shape must be (H, W, 3), got {image_shape}")
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        rng = np.random.default_rng(seed)
        height, width = image_shape[:2]
        ys = np.linspace(-1, 1, height)[:, None, None]
        xs = np.linspace(-1, 1, width)[None, :, None]
        weights = np.zeros((num_classes,) + tuple(image_shape))
        for class_index in range(num_classes):
            field = np.zeros((height, width, 3))
            for _ in range(components):
                fx, fy = rng.uniform(0.3, 1.5, size=2)
                phase = rng.uniform(0, 2 * np.pi, size=3)
                field += np.sin(2 * np.pi * (fx * xs + fy * ys) + phase)
            weights[class_index] = field / np.sqrt(
                components * height * width
            )
        if hotspot is not None:
            hx, hy = hotspot
            envelope = np.exp(
                -((xs[..., 0] - hx) ** 2 + (ys[..., 0] - hy) ** 2)
                / (2 * hotspot_width**2)
            )
            weights *= envelope[None, :, :, None]
        self.image_shape = tuple(image_shape)
        self.num_classes = num_classes
        self.temperature = temperature
        self.weight = weights.reshape(num_classes, -1)
        self.bias = rng.normal(0.0, 0.05, size=num_classes)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if image.shape != self.image_shape:
            raise ValueError(
                f"expected image of shape {self.image_shape}, got {image.shape}"
            )
        logits = self.weight @ image.reshape(-1) + self.bias
        return softmax(logits / self.temperature)


class SinglePixelBackdoorClassifier:
    """A classifier with a planted one-pixel vulnerability.

    It predicts a constant ``default_class`` everywhere, *except* when the
    pixel at ``trigger_location`` matches ``trigger_value`` (within
    ``tolerance`` in L1), in which case it predicts ``backdoor_class``.
    Tests use it to assert that an attack finds the unique successful
    (location, perturbation) pair and to validate query accounting against
    a known search order.
    """

    def __init__(
        self,
        image_shape: Tuple[int, int, int],
        trigger_location: Tuple[int, int],
        trigger_value: np.ndarray,
        default_class: int = 0,
        backdoor_class: int = 1,
        num_classes: int = 2,
        tolerance: float = 1e-9,
    ):
        if default_class == backdoor_class:
            raise ValueError("default and backdoor classes must differ")
        self.image_shape = tuple(image_shape)
        self.trigger_location = tuple(trigger_location)
        self.trigger_value = np.asarray(trigger_value, dtype=np.float64)
        self.default_class = default_class
        self.backdoor_class = backdoor_class
        self.num_classes = num_classes
        self.tolerance = tolerance

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if image.shape != self.image_shape:
            raise ValueError(
                f"expected image of shape {self.image_shape}, got {image.shape}"
            )
        i, j = self.trigger_location
        triggered = (
            np.abs(image[i, j] - self.trigger_value).sum() <= self.tolerance
        )
        scores = np.full(self.num_classes, 0.1 / max(self.num_classes - 1, 1))
        winner = self.backdoor_class if triggered else self.default_class
        scores[:] = (1.0 - 0.9) / max(self.num_classes - 1, 1)
        scores[winner] = 0.9
        return scores / scores.sum()


class MarginRampClassifier:
    """True-class confidence decays with the perturbed pixel's brightness.

    Useful for testing ``score_diff`` conditions: perturbing location
    ``(i, j)`` to a brighter value lowers the true class's score by a known
    amount, flipping the prediction when total brightness at a designated
    ``weak_location`` exceeds ``threshold``.
    """

    def __init__(
        self,
        image_shape: Tuple[int, int, int],
        weak_location: Tuple[int, int],
        true_class: int = 0,
        other_class: int = 1,
        threshold: float = 2.5,
        num_classes: int = 2,
        slope: float = 0.2,
    ):
        self.image_shape = tuple(image_shape)
        self.weak_location = tuple(weak_location)
        self.true_class = true_class
        self.other_class = other_class
        self.threshold = threshold
        self.num_classes = num_classes
        self.slope = slope

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if image.shape != self.image_shape:
            raise ValueError(
                f"expected image of shape {self.image_shape}, got {image.shape}"
            )
        i, j = self.weak_location
        brightness = float(image[i, j].sum())
        margin = self.slope * (self.threshold - brightness)
        logits = np.zeros(self.num_classes)
        logits[self.true_class] = margin
        logits[self.other_class] = -margin
        return softmax(logits)


def make_toy_images(
    count: int,
    image_shape: Tuple[int, int, int] = (6, 6, 3),
    seed: int = 0,
    smooth: bool = True,
) -> np.ndarray:
    """Random (N, H, W, 3) images in [0, 1] for toy-classifier tests.

    ``smooth=True`` produces mid-range values (beta(2,2)) so corner
    perturbations are always far from the original pixel.
    """
    rng = np.random.default_rng(seed)
    shape = (count,) + tuple(image_shape)
    if smooth:
        return rng.beta(2.0, 2.0, size=shape)
    return rng.uniform(0.0, 1.0, size=shape)
